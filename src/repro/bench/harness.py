"""System drivers: real protocol execution + simulated-time accounting.

Each ``run_*`` function executes a workload trace against the *actual*
protocol implementation (real batches, caches, PRFs, storage commands) and
charges the resulting operation counts to the cost model.  Nothing about
the access pattern is modeled — only the clock (see DESIGN.md §1).

Latency models (documented here once; EXPERIMENTS.md discusses fidelity):

* **insecure** — one stand-alone server op per request: latency is the
  per-op service time; throughput is ``client_threads / service``
  (closed loop).
* **Waffle / Pancake** — batched proxies: throughput is
  ``served_requests / Σ round_time``.  Latency is the batch round-trip
  floor (2·RTT) plus the amortized per-request share of the round,
  doubled for the batch queued ahead under saturation.
* **TaoStore** — the sequencer/write-back serializes the processor:
  throughput is ``1 / per-access service time`` regardless of client
  threads, and a closed-loop population of ``client_threads`` queues up,
  so latency is ``client_threads × service`` (this is how the paper's
  ~300 ms latency at ~100 ops/s arises).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines.insecure import InsecureStore
from repro.baselines.pancake import PancakeProxy
from repro.baselines.taostore import TaoStore
from repro.core.batch import request_from_trace
from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.sim.costmodel import CostModel
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import TraceRequest

__all__ = [
    "Measurement",
    "run_insecure",
    "run_pancake",
    "run_taostore",
    "run_waffle",
    "waffle_round_time",
]


@dataclass
class Measurement:
    """One system's performance under one workload."""

    system: str
    throughput_ops: float
    latency_s: float
    requests: int
    rounds: int
    sim_seconds: float
    extra: dict = field(default_factory=dict)

    def describe(self) -> str:
        return (f"{self.system}: {self.throughput_ops:,.0f} ops/s, "
                f"{self.latency_s * 1e3:.3f} ms")


def _chunks(trace: list[TraceRequest], size: int):
    for start in range(0, len(trace), size):
        yield trace[start: start + size]


# ----------------------------------------------------------------------
# Waffle
# ----------------------------------------------------------------------
def waffle_round_time(stats, config: WaffleConfig, cost: CostModel) -> float:
    """Simulated duration of one Waffle round from its operation counts."""
    kib = config.value_size / 1024
    read_trip = cost.pipelined_round_trip_s(stats.server_reads, kib)
    write_trip = cost.pipelined_round_trip_s(stats.server_writes, kib)
    # Deletes piggyback on the next round trip (the paper's background
    # thread): charge server work only.
    delete_work = stats.server_deletes * cost.server_op_pipelined_s
    cpu = (
        (stats.requests + stats.server_reads + stats.server_writes)
        * cost.proxy_item_s
        + stats.prf_evals * cost.prf_s
        + (stats.decryptions + stats.encryptions) * cost.aead_s(1, kib)
        + stats.cache_ops * cost.lru_op_s(config.c)
        + stats.index_ops * cost.index_op_s(config.n)
    )
    return read_trip + write_trip + delete_work + cpu / cost.core_efficiency()


def _waffle_latency(config: WaffleConfig, round_time: float,
                    served: float, cost: CostModel) -> float:
    if served <= 0:
        return 0.0
    per_request = round_time / served
    return 2 * cost.rtt_s + 2 * per_request


def run_waffle(config: WaffleConfig, items: dict[str, bytes],
               trace: list[TraceRequest], cost: CostModel,
               keychain: KeyChain | None = None, record: bool = False,
               log_ids: bool = False,
               datastore: WaffleDatastore | None = None,
               ) -> tuple[Measurement, WaffleDatastore]:
    """Run ``trace`` through Waffle in R-request batches."""
    if datastore is None:
        keychain = keychain if keychain is not None else KeyChain.from_seed(
            config.seed if config.seed is not None else 0
        )
        datastore = WaffleDatastore(config, items, record=record,
                                    keychain=keychain, log_ids=log_ids)
    sim_seconds = 0.0
    served = 0
    rounds = 0
    latency_acc = 0.0
    for chunk in _chunks(trace, config.r):
        requests = [request_from_trace(req) for req in chunk]
        datastore.execute_batch(requests)
        stats = datastore.proxy.last_stats
        round_time = waffle_round_time(stats, config, cost)
        sim_seconds += round_time
        served += len(chunk)
        rounds += 1
        latency_acc += _waffle_latency(config, round_time, len(chunk), cost)
    throughput = served / sim_seconds if sim_seconds else 0.0
    latency = latency_acc / rounds if rounds else 0.0
    measurement = Measurement(
        system="waffle", throughput_ops=throughput, latency_s=latency,
        requests=served, rounds=rounds, sim_seconds=sim_seconds,
        extra={
            "cache_hit_rate": (datastore.proxy.totals.cache_hits
                               / max(1, datastore.proxy.totals.requests)),
            "server_size": datastore.server_size,
        },
    )
    return measurement, datastore


def run_waffle_with_inserts(config: WaffleConfig, items: dict[str, bytes],
                            trace: list[TraceRequest], cost: CostModel,
                            keychain: KeyChain | None = None,
                            record: bool = False,
                            ) -> tuple[Measurement, WaffleDatastore]:
    """Like :func:`run_waffle` but routes INSERT operations through the
    dummy-swap mutation path (YCSB workload D)."""
    from repro.workloads.trace import Operation

    keychain = keychain if keychain is not None else KeyChain.from_seed(
        config.seed if config.seed is not None else 0)
    datastore = WaffleDatastore(config, items, record=record,
                                keychain=keychain)
    sim_seconds = 0.0
    served = 0
    rounds = 0
    latency_acc = 0.0
    batch: list = []

    def flush_batch() -> None:
        nonlocal sim_seconds, served, rounds, latency_acc, batch
        if not batch:
            return
        datastore.execute_batch(batch)
        stats = datastore.proxy.last_stats
        round_time = waffle_round_time(stats, config, cost)
        sim_seconds += round_time
        served += len(batch)
        rounds += 1
        latency_acc += _waffle_latency(config, round_time, len(batch), cost)
        batch = []

    pending_inserts: set[str] = set()
    for request in trace:
        if request.op is Operation.INSERT:
            if datastore.proxy.dummy_count \
                    - datastore.proxy.mutations.pending_inserts <= 0:
                continue  # dummy budget exhausted
            datastore.insert(request.key, request.value)
            pending_inserts.add(request.key)
            served += 1
            continue
        if request.key in pending_inserts:
            # Read-your-insert: queued mutations must be applied by
            # round(s) before the key is readable.
            flush_batch()
            while datastore.proxy.mutations.pending_inserts:
                datastore.execute_batch([])
                stats = datastore.proxy.last_stats
                sim_seconds += waffle_round_time(stats, config, cost)
                rounds += 1
            pending_inserts.clear()
        batch.append(request_from_trace(request))
        if len(batch) >= config.r:
            flush_batch()
    flush_batch()
    throughput = served / sim_seconds if sim_seconds else 0.0
    measurement = Measurement(
        system="waffle+inserts", throughput_ops=throughput,
        latency_s=latency_acc / rounds if rounds else 0.0,
        requests=served, rounds=rounds, sim_seconds=sim_seconds,
        extra={
            "inserted": datastore.proxy.real_count - config.n,
            "dummies_left": datastore.proxy.dummy_count,
        },
    )
    return measurement, datastore


# ----------------------------------------------------------------------
# insecure baseline
# ----------------------------------------------------------------------
def run_insecure(items: dict[str, bytes], trace: list[TraceRequest],
                 cost: CostModel) -> Measurement:
    """Direct plaintext access: every request is its own server op."""
    store = InsecureStore(RedisSim(), dict(items))
    kib = (len(next(iter(items.values()))) / 1024) if items else 1.0
    for request in trace:
        store.execute(request)
    service = cost.unbatched_op_s(kib) + cost.client_overhead_s
    sim_seconds = len(trace) * service / max(1, cost.client_threads)
    return Measurement(
        system="insecure",
        throughput_ops=cost.client_threads / service,
        latency_s=service,
        requests=len(trace),
        rounds=len(trace),
        sim_seconds=sim_seconds,
    )


# ----------------------------------------------------------------------
# Pancake
# ----------------------------------------------------------------------
def pancake_batch_time(proxy: PancakeProxy, reads: int, writes: int,
                       served: int, cost: CostModel, kib: float) -> float:
    """Simulated duration of one Pancake batch."""
    read_trip = cost.pipelined_round_trip_s(reads, kib)
    write_trip = cost.pipelined_round_trip_s(writes, kib)
    slots = proxy.batch_size
    cpu = (
        slots * (2 * cost.proxy_item_s + cost.pancake_slot_s)
        + slots * cost.prf_s
        + (reads + writes) * cost.aead_s(1, kib)
        + slots * 0.5 * cost.pancake_sample_s
        + slots * cost.pancake_update_cache_s
    )
    return read_trip + write_trip + cpu / cost.core_efficiency()


def run_pancake(keys: list[str], items: dict[str, bytes], assumed_pi,
                trace: list[TraceRequest], cost: CostModel,
                batch_size: int, delta: float = 0.5,
                seed: int | None = 0, record: bool = False,
                store=None) -> tuple[Measurement, PancakeProxy]:
    """Run ``trace`` through Pancake, draining it batch by batch."""
    if store is None:
        store = RedisSim()
    proxy = PancakeProxy(keys, dict(items), assumed_pi, store,
                         batch_size=batch_size, delta=delta,
                         keychain=KeyChain.from_seed(seed or 0), seed=seed)
    kib = (len(next(iter(items.values()))) / 1024) if items else 1.0
    sim_seconds = 0.0
    served = 0
    rounds = 0
    latency_acc = 0.0
    cursor = 0
    while cursor < len(trace) or proxy.pending():
        # Keep the queue primed so the delta coin has real requests to take.
        while cursor < len(trace) and proxy.pending() < batch_size:
            proxy.submit(trace[cursor])
            cursor += 1
        before_reads = proxy.stats.server_reads
        before_writes = proxy.stats.server_writes
        got = proxy.process_batch()
        reads = proxy.stats.server_reads - before_reads
        writes = proxy.stats.server_writes - before_writes
        batch_time = pancake_batch_time(proxy, reads, writes, got, cost, kib)
        sim_seconds += batch_time
        served += got
        rounds += 1
        if got:
            latency_acc += 2 * cost.rtt_s + 2 * batch_time / got
    throughput = served / sim_seconds if sim_seconds else 0.0
    latency = latency_acc / rounds if rounds else 0.0
    measurement = Measurement(
        system="pancake", throughput_ops=throughput, latency_s=latency,
        requests=served, rounds=rounds, sim_seconds=sim_seconds,
        extra={"max_update_cache": proxy.stats.max_update_cache},
    )
    return measurement, proxy


# ----------------------------------------------------------------------
# TaoStore
# ----------------------------------------------------------------------
def run_taostore(items: dict[str, bytes], trace: list[TraceRequest],
                 cost: CostModel, seed: int | None = 0,
                 store=None) -> tuple[Measurement, TaoStore]:
    """Run ``trace`` through TaoStore one sequenced access at a time."""
    if store is None:
        store = RedisSim()
    tao = TaoStore(dict(items), store, seed=seed,
                   keychain=KeyChain.from_seed(seed or 0))
    kib = (len(next(iter(items.values()))) / 1024) if items else 1.0
    bucket_kib = kib * tao.z
    sim_seconds = 0.0
    for request in trace:
        before_r = tao.stats.buckets_read
        before_w = tao.stats.buckets_written
        tao.execute(request)
        buckets_read = tao.stats.buckets_read - before_r
        buckets_written = tao.stats.buckets_written - before_w
        # Path fetch: one pipelined trip of (L+1) buckets; write-back the
        # same shape when the flush fires; serialization overhead per
        # bucket moved.
        access_time = (
            cost.pipelined_round_trip_s(buckets_read, bucket_kib)
            + cost.pipelined_round_trip_s(buckets_written, bucket_kib)
            + (buckets_read + buckets_written)
            * (cost.aead_s(1, bucket_kib) + cost.taostore_bucket_s)
        )
        sim_seconds += access_time
    service = sim_seconds / max(1, len(trace))
    return Measurement(
        system="taostore",
        throughput_ops=1.0 / service if service else 0.0,
        latency_s=service * cost.client_threads,
        requests=len(trace),
        rounds=len(trace),
        sim_seconds=sim_seconds,
        extra={"fake_reads": tao.stats.fake_reads,
               "flushes": tao.stats.flushes},
    ), tao


def path_oram_access_time(levels: int, z: int, kib: float,
                          cost: CostModel) -> float:
    """Reference per-access time of PathORAM (used by ablations)."""
    bucket_kib = kib * z
    per_path = cost.pipelined_round_trip_s(levels, bucket_kib)
    crypto = 2 * levels * cost.aead_s(1, bucket_kib)
    return 2 * per_path + crypto + math.log2(max(2, levels)) * cost.index_log_s
