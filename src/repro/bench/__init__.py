"""Benchmark harness: experiment drivers for every table and figure.

* :mod:`repro.bench.harness` — runs each system's real protocol over a
  workload trace and converts its operation counts into simulated-time
  throughput/latency via the cost model;
* :mod:`repro.bench.experiments` — one entry point per paper table/figure
  (the per-experiment index lives in DESIGN.md §3);
* :mod:`repro.bench.reporting` — paper-style table/series rendering.
"""

from repro.bench.harness import (
    Measurement,
    run_insecure,
    run_pancake,
    run_taostore,
    run_waffle,
    run_waffle_with_inserts,
)

__all__ = [
    "Measurement",
    "run_insecure",
    "run_pancake",
    "run_taostore",
    "run_waffle",
    "run_waffle_with_inserts",
]
