"""Pancake's distribution-change handling: detect, re-learn, re-smooth.

The paper's first criticism of Pancake (§1, §2): it achieves *offline*
obliviousness — "although Pancake presents a mechanism to handle
changing distributions, the new distribution must be learnt before
ensuring frequency smoothing".  This module implements that mechanism so
the limitation can be measured rather than asserted:

* :class:`DistributionEstimator` — an online frequency estimator over
  the real client queries (what Pancake's proxy can legitimately see);
* :class:`DriftDetector` — a chi-square test of recent traffic against
  the assumed π; a significant deviation flags drift;
* :func:`resmooth` — rebuilds the replica layout and fake distribution
  from the re-learnt π.  Re-smoothing re-creates replicas server-side —
  an expensive, observable migration, which is exactly why the window
  between drift and re-smoothing is insecure (the experiment in
  tests/test_pancake_relearn.py shows per-replica uniformity breaking
  during that window and recovering after).
"""

from __future__ import annotations

from collections import Counter, deque

import numpy as np

from repro.baselines.pancake.proxy import PancakeProxy
from repro.baselines.pancake.smoothing import SmoothedDistribution
from repro.errors import ConfigurationError
from repro.storage.base import StorageBackend

__all__ = ["DistributionEstimator", "DriftDetector", "resmooth"]


class DistributionEstimator:
    """Exponentially-weighted online estimate of the query distribution."""

    def __init__(self, keys: list[str], half_life: int = 2000) -> None:
        if half_life < 1:
            raise ConfigurationError("half life must be positive")
        self.keys = list(keys)
        self._index = {key: i for i, key in enumerate(self.keys)}
        self._weights = np.ones(len(self.keys))  # Laplace prior
        self._decay = 0.5 ** (1.0 / half_life)

    def observe(self, key: str) -> None:
        self._weights *= self._decay
        self._weights[self._index[key]] += 1.0

    def estimate(self) -> np.ndarray:
        return self._weights / self._weights.sum()


class DriftDetector:
    """Chi-square drift test of recent queries against the assumed π."""

    def __init__(self, assumed_pi, window: int = 2000,
                 significance: float = 1e-4) -> None:
        self.assumed = np.asarray(assumed_pi, dtype=float)
        self.window = window
        self.significance = significance
        self._recent: deque[int] = deque(maxlen=window)

    def observe(self, key_index: int) -> bool:
        """Feed one query; returns True when drift is detected."""
        self._recent.append(key_index)
        if len(self._recent) < self.window:
            return False
        return self.check()

    def check(self) -> bool:
        from scipy import stats

        counts = Counter(self._recent)
        observed = np.array([counts.get(i, 0)
                             for i in range(len(self.assumed))], float)
        expected = self.assumed * observed.sum()
        # Pool tiny-expectation cells to keep the test valid.
        keep = expected >= 1.0
        pooled_obs = np.append(observed[keep], observed[~keep].sum())
        pooled_exp = np.append(expected[keep], expected[~keep].sum())
        if pooled_exp[-1] == 0:
            pooled_obs, pooled_exp = pooled_obs[:-1], pooled_exp[:-1]
        _, p_value = stats.chisquare(pooled_obs, pooled_exp)
        return bool(p_value < self.significance)


def resmooth(proxy: PancakeProxy, new_pi, store: StorageBackend | None = None,
             seed: int | None = None) -> PancakeProxy:
    """Rebuild a Pancake deployment for a re-learnt distribution.

    Reads every key's current value through the old proxy's view (the
    update cache holds the freshest values), then constructs a new proxy
    with the new smoothing over a fresh store — the server-visible
    migration Pancake must perform to regain uniformity.
    """
    values = {}
    for key_index, key in enumerate(proxy.keys):
        if key in proxy.update_cache:
            values[key] = proxy.update_cache[key][0]
        else:
            sid = proxy._replica_id(key_index, 0)
            values[key] = proxy.keychain.cipher.decrypt(proxy.store.get(sid))
    from repro.storage.redis_sim import RedisSim

    target = store if store is not None else RedisSim()
    return PancakeProxy(proxy.keys, values, new_pi, target,
                        batch_size=proxy.batch_size, delta=proxy.delta,
                        keychain=proxy.keychain, seed=seed)
