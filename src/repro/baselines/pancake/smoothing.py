"""Pancake's frequency-smoothing mathematics.

Given the assumed plaintext distribution π over ``n`` keys:

* replica count  ``R(k) = max(1, ceil(π(k) · n))`` — so each replica of
  ``k`` carries real-access probability ``π(k)/R(k) ≤ 1/n``;
* the replica universe is padded with dummy replicas to ``n̂ = 2n``
  (``Σ R(k) ≤ 2n`` because ceil adds < 1 per key);
* the fake-query distribution over replicas makes totals uniform at
  δ = 1/2 real/fake mixing:

  ``P(slot hits (k,j)) = δ·π(k)/R(k) + (1-δ)·π_f(k,j) = 1/n̂``
  ⇒ ``π_f(k,j) = 2/n̂ − π(k)/R(k)``  (non-negative by the R(k) choice,
  and equal to ``2/n̂`` for dummy replicas).

Sampling π_f uses Walker's alias method so a fake draw is O(1) — Pancake
issues one per slot on average.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.seeding import seeded_rng

from repro.errors import ConfigurationError

__all__ = ["AliasSampler", "SmoothedDistribution"]


class AliasSampler:
    """Walker alias method: O(1) sampling from a fixed discrete law."""

    __slots__ = ("_prob", "_alias", "_rng", "n")

    def __init__(self, weights, seed: int | None = None) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise ConfigurationError("weights must be a non-empty 1-D array")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ConfigurationError("weights must be non-negative, sum > 0")
        self.n = len(weights)
        probability = weights * (self.n / weights.sum())
        prob = np.zeros(self.n)
        alias = np.zeros(self.n, dtype=np.int64)
        small = [i for i, p in enumerate(probability) if p < 1.0]
        large = [i for i, p in enumerate(probability) if p >= 1.0]
        while small and large:
            s, l = small.pop(), large.pop()
            prob[s] = probability[s]
            alias[s] = l
            probability[l] = probability[l] - (1.0 - probability[s])
            (small if probability[l] < 1.0 else large).append(l)
        for remaining in small + large:
            prob[remaining] = 1.0
        self._prob = prob
        self._alias = alias
        self._rng = seeded_rng(seed)

    def sample(self) -> int:
        i = self._rng.randrange(self.n)
        if self._rng.random() < self._prob[i]:
            return i
        return int(self._alias[i])


class SmoothedDistribution:
    """Replica layout and fake-query law for an assumed distribution.

    Parameters
    ----------
    pi:
        Assumed probability of each key index (length n; must sum to ~1).
    seed:
        Seed for the fake-query sampler.
    """

    def __init__(self, pi, seed: int | None = None) -> None:
        pi = np.asarray(pi, dtype=np.float64)
        if pi.ndim != 1 or len(pi) == 0:
            raise ConfigurationError("pi must be a non-empty 1-D array")
        if np.any(pi < 0):
            raise ConfigurationError("pi must be non-negative")
        total = pi.sum()
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ConfigurationError(f"pi must sum to 1, got {total}")
        self.n = len(pi)
        self.pi = pi
        self.replicas = np.maximum(1, np.ceil(pi * self.n)).astype(np.int64)
        self.n_hat = 2 * self.n
        real_total = int(self.replicas.sum())
        if real_total > self.n_hat:
            raise ConfigurationError(
                "replica budget exceeded: sum ceil(pi*n) > 2n"
            )
        self.dummy_replicas = self.n_hat - real_total

        # Enumerate the replica universe: (key_index, replica_index), with
        # key_index = -1 for dummies.
        self.universe: list[tuple[int, int]] = [
            (key, j)
            for key in range(self.n)
            for j in range(int(self.replicas[key]))
        ]
        self.universe.extend((-1, j) for j in range(self.dummy_replicas))

        fake_weights = np.empty(len(self.universe))
        for slot, (key, j) in enumerate(self.universe):
            if key < 0:
                fake_weights[slot] = 2.0 / self.n_hat
            else:
                fake_weights[slot] = 2.0 / self.n_hat - pi[key] / self.replicas[key]
        # Clip away floating-point dust; exact zeros are legitimate for
        # maximally popular keys.
        fake_weights = np.clip(fake_weights, 0.0, None)
        self.fake_weights = fake_weights
        self._fake_sampler = AliasSampler(fake_weights, seed=seed)
        self._replica_rng = seeded_rng(seed, stream=1)

    def replica_count(self, key_index: int) -> int:
        return int(self.replicas[key_index])

    def sample_fake(self) -> tuple[int, int]:
        """Draw a (key_index, replica_index) fake target; key -1 = dummy."""
        return self.universe[self._fake_sampler.sample()]

    def pick_replica(self, key_index: int) -> int:
        """Uniform replica choice for a real access to ``key_index``."""
        return self._replica_rng.randrange(int(self.replicas[key_index]))

    def replica_access_probability(self, key_index: int, replica: int) -> float:
        """Stationary per-slot access probability of one replica (should be
        1/n̂ for every replica when the assumed π matches reality)."""
        slot_offset = int(self.replicas[:key_index].sum()) + replica
        fake = self.fake_weights[slot_offset]
        real = self.pi[key_index] / self.replicas[key_index]
        return 0.5 * real + 0.5 * fake
