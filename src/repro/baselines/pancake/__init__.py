"""Pancake (Grubbs et al., USENIX Security 2020) — full reimplementation.

Pancake achieves *frequency smoothing* under a passive persistent
adversary given (near-accurate) prior knowledge of the plaintext access
distribution π:

* each key ``k`` gets ``R(k) = ceil(π(k)·n)`` replicas, padded with
  dummy replicas to ``n̂ = 2n`` outsourced objects;
* every batch slot flips a δ=1/2 coin: real query (next queued client
  request, replica chosen uniformly) or fake query drawn from the
  complementary distribution ``π_f(k,j) = 2/n̂ − π(k)/R(k)``, making every
  replica's access probability exactly ``1/n̂``;
* storage ids are **static** (``prf(k‖j)``), which is what the correlated
  query attack of IHOP exploits and what Waffle's non-static ids fix;
* writes propagate lazily through an ``updateCache`` that can grow to
  Θ(N) — one of the limitations motivating Waffle.
"""

from repro.baselines.pancake.smoothing import SmoothedDistribution
from repro.baselines.pancake.proxy import PancakeProxy

__all__ = ["PancakeProxy", "SmoothedDistribution"]
