"""Pancake's trusted proxy.

Per batch of ``B`` slots the proxy:

1. fills each slot with a δ=1/2 coin — a queued real client request
   (uniformly chosen replica of the requested key) or a fake query drawn
   from the smoothed complementary distribution;
2. reads the ``B`` (static) storage ids in one pipelined round trip;
3. re-encrypts and writes back every accessed replica — reads and writes
   are indistinguishable, and the write-back is where pending updates
   propagate;
4. maintains the ``updateCache``: a write to key ``k`` cannot update all
   ``R(k)`` replicas at once (only accessed replicas may be touched), so
   the newest value parks in the cache until every replica has been
   rewritten.  This is the data structure the paper criticizes for
   growing to Θ(N).

Storage ids are static (``prf(k‖j)``), so Pancake hides *frequencies*,
not *sequences* — the correlated-query attack in
:mod:`repro.analysis.attacks` exploits exactly this.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.baselines.pancake.smoothing import SmoothedDistribution
from repro.obs import OBS
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, ProtocolError
from repro.seeding import seeded_rng
from repro.storage.base import StorageBackend
from repro.storage.recording import RecordingStore
from repro.workloads.trace import Operation, TraceRequest

__all__ = ["PancakeProxy", "PancakeStats"]

_DUMMY_KEY = "\x00pancake-dummy"


@dataclass(slots=True)
class PancakeStats:
    """Lifetime operation counts for the cost model."""

    batches: int = 0
    real_slots: int = 0
    fake_slots: int = 0
    server_reads: int = 0
    server_writes: int = 0
    prf_evals: int = 0
    decryptions: int = 0
    encryptions: int = 0
    update_cache_ops: int = 0
    fake_samples: int = 0
    max_update_cache: int = 0
    per_batch: list = field(default_factory=list)


class PancakeProxy:
    """Frequency-smoothing proxy over an assumed distribution.

    Parameters
    ----------
    keys:
        The n plaintext keys, index-aligned with ``assumed_pi``.
    items:
        Initial values per key.
    assumed_pi:
        The distribution Pancake believes client queries follow.  Security
        holds only while reality matches it (offline obliviousness).
    store:
        Untrusted server (plain mode — Pancake overwrites replicas in
        place).
    batch_size:
        Slots per server batch.  The paper measured Pancake's effective
        batch at ~2500 slots with δ=1/2 (§8.1).
    """

    def __init__(self, keys: list[str], items: dict[str, bytes],
                 assumed_pi, store: StorageBackend,
                 batch_size: int = 2500, delta: float = 0.5,
                 keychain: KeyChain | None = None,
                 seed: int | None = None,
                 keep_batch_stats: bool = False) -> None:
        if batch_size < 1:
            raise ConfigurationError("batch size must be positive")
        if not 0 < delta < 1:
            raise ConfigurationError("delta must lie strictly in (0, 1)")
        if set(keys) != set(items):
            raise ConfigurationError("keys and items must align")
        self.keys = list(keys)
        self.key_index = {key: i for i, key in enumerate(self.keys)}
        self.smoothing = SmoothedDistribution(assumed_pi, seed=seed)
        if self.smoothing.n != len(self.keys):
            raise ConfigurationError("assumed_pi length must equal len(keys)")
        self.store = store
        self.batch_size = batch_size
        self.delta = delta
        self.keychain = keychain if keychain is not None else KeyChain()
        self._rng = seeded_rng(seed)
        self.stats = PancakeStats()
        self._keep_batch_stats = keep_batch_stats
        #: key -> (value, set of replica indices still stale)
        self.update_cache: dict[str, tuple[bytes, set[int]]] = {}
        self._queue: deque[tuple[TraceRequest, list]] = deque()
        self._initialize(items)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _replica_id(self, key_index: int, replica: int) -> str:
        if key_index < 0:
            return self.keychain.prf.derive(f"{_DUMMY_KEY}:{replica}", 0)
        return self.keychain.prf.derive(f"{self.keys[key_index]}:{replica}", 0)

    def _initialize(self, items: dict[str, bytes]) -> None:
        load = []
        for key_index, key in enumerate(self.keys):
            for replica in range(self.smoothing.replica_count(key_index)):
                load.append((
                    self._replica_id(key_index, replica),
                    self.keychain.cipher.encrypt(items[key]),
                ))
        for replica in range(self.smoothing.dummy_replicas):
            load.append((
                self._replica_id(-1, replica),
                self.keychain.cipher.encrypt(b"\x00"),
            ))
        self._rng.shuffle(load)
        self.store.multi_put(load)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(self, request: TraceRequest) -> list:
        """Queue one client request; returns a single-slot result list
        that is filled in when the request is served by a batch."""
        result: list = []
        self._queue.append((request, result))
        return result

    def pending(self) -> int:
        return len(self._queue)

    def process_batch(self) -> int:
        """Fill and execute one B-slot batch; returns real requests served."""
        stats = self.stats
        recording = self.store if isinstance(self.store, RecordingStore) else None
        if recording is not None:
            recording.next_round()
        obs = OBS
        observing = obs.enabled
        if observing:
            _t0 = time.perf_counter()

        # Slot selection: the delta coin per slot.
        slots: list[tuple[int, int, TraceRequest | None, list | None]] = []
        for _ in range(self.batch_size):
            take_real = self._queue and self._rng.random() < self.delta
            if take_real:
                request, result = self._queue.popleft()
                key_index = self.key_index.get(request.key)
                if key_index is None:
                    raise ProtocolError(f"unknown key: {request.key!r}")
                replica = self.smoothing.pick_replica(key_index)
                slots.append((key_index, replica, request, result))
                stats.real_slots += 1
            else:
                key_index, replica = self.smoothing.sample_fake()
                slots.append((key_index, replica, None, None))
                stats.fake_slots += 1
                stats.fake_samples += 1

        # One pipelined read of all slot ids (duplicates read once).
        sids = [self._replica_id(k, j) for k, j, _, _ in slots]
        stats.prf_evals += len(sids)
        unique_sids = list(dict.fromkeys(sids))
        blobs = dict(zip(unique_sids, self.store.multi_get(unique_sids)))
        stats.server_reads += len(unique_sids)

        # Decrypt each fetched replica once; slots then read/modify the
        # plaintext view so same-batch read-after-write is linearizable.
        plain = {sid: self.keychain.cipher.decrypt(blob)
                 for sid, blob in blobs.items()}
        stats.decryptions += len(plain)

        for (key_index, replica, request, result), sid in zip(slots, sids):
            value = plain[sid]
            key = self.keys[key_index] if key_index >= 0 else None

            if key is not None and key in self.update_cache:
                newest, stale = self.update_cache[key]
                value = newest
                stale.discard(replica)
                stats.update_cache_ops += 1
                if not stale:
                    del self.update_cache[key]

            if request is not None:
                if request.op is Operation.WRITE:
                    value = request.value
                    stale = set(range(self.smoothing.replica_count(key_index)))
                    stale.discard(replica)
                    if stale:
                        self.update_cache[key] = (value, stale)
                    else:
                        self.update_cache.pop(key, None)
                    stats.update_cache_ops += 1
                    result.append(value)
                else:
                    result.append(value)

            plain[sid] = value

        write_back = {
            sid: self.keychain.cipher.encrypt(value)
            for sid, value in plain.items()
        }
        stats.encryptions += len(write_back)
        self.store.multi_put(write_back.items())
        stats.server_writes += len(write_back)
        stats.batches += 1
        stats.max_update_cache = max(stats.max_update_cache, len(self.update_cache))
        served = sum(1 for _, _, request, _ in slots if request is not None)
        if self._keep_batch_stats:
            stats.per_batch.append((served, len(unique_sids), len(write_back)))
        if observing:
            labels = {"system": "pancake"}
            reg = obs.registry
            fake = self.batch_size - served
            reg.counter("rounds.total", **labels).inc()
            reg.counter("requests.total", **labels).inc(served)
            reg.counter("server.reads.total", **labels).inc(len(unique_sids))
            reg.counter("server.writes.total", **labels).inc(len(write_back))
            reg.counter("batch.real.total", **labels).inc(served)
            reg.counter("batch.fake_dummy.total", **labels).inc(fake)
            reg.gauge("cache.size", **labels).set(len(self.update_cache))
            obs.observe_span("round", time.perf_counter() - _t0,
                             labels=labels, round=stats.batches,
                             requests=served, real=served, fake_dummy=fake)
        return served

    # ------------------------------------------------------------------
    # convenience synchronous API
    # ------------------------------------------------------------------
    def execute(self, request: TraceRequest) -> bytes:
        """Submit one request and run batches until it is answered."""
        result = self.submit(request)
        while not result:
            self.process_batch()
        return result[0]
