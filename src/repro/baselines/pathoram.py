"""PathORAM (Stefanov et al., CCS 2013) — from-scratch implementation.

Background for Waffle's §2: PathORAM stores encrypted blocks in a binary
tree of buckets on the server.  A position map assigns every key to a
uniformly random leaf; an access reads the *entire path* from root to that
leaf into a client-side stash, remaps the key to a fresh random leaf
(non-static storage identifiers — the property Waffle adopts), and writes
the path back greedily, pushing stash blocks as deep as their leaf
assignment allows.  Every access therefore moves Z·(L+1) blocks in each
direction — the Θ(log N) bandwidth overhead the paper contrasts with
Waffle's constant overhead.

Buckets are stored as one encrypted blob per tree node so the adversary
observes only which nodes are touched (always one full path).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.crypto.keys import KeyChain
from repro.obs import OBS
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.seeding import seeded_rng
from repro.storage.base import StorageBackend
from repro.workloads.trace import Operation, TraceRequest

__all__ = ["PathOram", "PathOramStats"]


@dataclass(slots=True)
class PathOramStats:
    accesses: int = 0
    buckets_read: int = 0
    buckets_written: int = 0
    max_stash: int = 0


class PathOram:
    """Tree ORAM with client-side stash and position map.

    Parameters
    ----------
    items:
        Initial key-value mapping (defines N).
    store:
        Untrusted server (plain overwrite mode — buckets are rewritten in
        place; freshness comes from re-encryption).
    bucket_size:
        Z, blocks per bucket (the standard choice is 4).
    """

    def __init__(self, items: dict[str, bytes], store: StorageBackend,
                 bucket_size: int = 4, keychain: KeyChain | None = None,
                 seed: int | None = None) -> None:
        if not items:
            raise ConfigurationError("PathORAM needs a non-empty dataset")
        if bucket_size < 1:
            raise ConfigurationError("bucket size Z must be positive")
        self.n = len(items)
        self.z = bucket_size
        self.levels = max(1, math.ceil(math.log2(max(2, self.n)))) + 1
        self.leaves = 2 ** (self.levels - 1)
        self.store = store
        self.keychain = keychain if keychain is not None else KeyChain()
        self._rng = seeded_rng(seed)
        self.stats = PathOramStats()
        self.position: dict[str, int] = {}
        self.stash: dict[str, bytes] = {}

        # Server tree: node ids 1..2^levels-1 (heap order), all buckets
        # initially empty; blocks enter via evictions below.
        empty = self._encode_bucket([])
        self.store.multi_put(
            (self._node_id(node), empty)
            for node in range(1, 2 ** self.levels)
        )
        for key, value in items.items():
            self.position[key] = self._rng.randrange(self.leaves)
            self.stash[key] = value
            # Flush the stash through a dummy access so initialization does
            # not leave Θ(N) blocks client-side.
            self._evict_along(self.position[key])
        self.stats = PathOramStats()  # initialization doesn't count

    # ------------------------------------------------------------------
    # tree helpers
    # ------------------------------------------------------------------
    def _node_id(self, node: int) -> str:
        return f"oram:node:{node:08d}"

    def _path_nodes(self, leaf: int) -> list[int]:
        """Heap-order node indices from root to ``leaf``."""
        node = self.leaves + leaf  # leaf nodes occupy [2^(L), 2^(L+1))
        path = []
        while node >= 1:
            path.append(node)
            node //= 2
        path.reverse()
        return path

    def _encode_bucket(self, blocks: list[tuple[str, int, bytes]]) -> bytes:
        parts = []
        for key, leaf, value in blocks:
            kb = key.encode("utf-8")
            parts.append(len(kb).to_bytes(2, "big") + kb
                         + leaf.to_bytes(4, "big")
                         + len(value).to_bytes(4, "big") + value)
        return self.keychain.cipher.encrypt(b"".join(parts))

    def _decode_bucket(self, blob: bytes) -> list[tuple[str, int, bytes]]:
        raw = self.keychain.cipher.decrypt(blob)
        blocks = []
        cursor = 0
        while cursor < len(raw):
            klen = int.from_bytes(raw[cursor:cursor + 2], "big")
            cursor += 2
            key = raw[cursor:cursor + klen].decode("utf-8")
            cursor += klen
            leaf = int.from_bytes(raw[cursor:cursor + 4], "big")
            cursor += 4
            vlen = int.from_bytes(raw[cursor:cursor + 4], "big")
            cursor += 4
            value = raw[cursor:cursor + vlen]
            cursor += vlen
            blocks.append((key, leaf, value))
        return blocks

    # ------------------------------------------------------------------
    # the ORAM access
    # ------------------------------------------------------------------
    def access(self, op: Operation, key: str, value: bytes | None = None) -> bytes:
        """One PathORAM access: read path, remap, serve, evict, write path."""
        if key not in self.position:
            raise KeyNotFoundError(key)
        obs = OBS
        observing = obs.enabled
        if observing:
            _t0 = time.perf_counter()
            _reads0 = self.stats.buckets_read
            _writes0 = self.stats.buckets_written
        leaf = self.position[key]
        self._read_path_into_stash(leaf)
        self.position[key] = self._rng.randrange(self.leaves)

        if key not in self.stash:  # pragma: no cover - defensive
            raise KeyNotFoundError(key)
        if op is Operation.WRITE:
            if value is None:
                raise ConfigurationError("write access requires a value")
            self.stash[key] = value
        result = self.stash[key]

        self._write_path_from_stash(leaf)
        self.stats.accesses += 1
        self.stats.max_stash = max(self.stats.max_stash, len(self.stash))
        if observing:
            # Each access is its own "round" (PathORAM is unbatched); the
            # shared metric names keep the systems comparable side by side.
            labels = {"system": "pathoram"}
            reg = obs.registry
            reg.counter("rounds.total", **labels).inc()
            reg.counter("requests.total", **labels).inc()
            reg.counter("batch.real.total", **labels).inc()
            reg.counter("server.reads.total", **labels).inc(
                self.stats.buckets_read - _reads0)
            reg.counter("server.writes.total", **labels).inc(
                self.stats.buckets_written - _writes0)
            reg.gauge("cache.size", **labels).set(len(self.stash))
            obs.observe_span("round", time.perf_counter() - _t0,
                             labels=labels, round=self.stats.accesses,
                             requests=1, real=1, stash=len(self.stash))
        return result

    def _read_path_into_stash(self, leaf: int) -> None:
        nodes = self._path_nodes(leaf)
        blobs = self.store.multi_get([self._node_id(node) for node in nodes])
        self.stats.buckets_read += len(nodes)
        for blob in blobs:
            for key, key_leaf, value in self._decode_bucket(blob):
                self.stash[key] = value

    def _write_path_from_stash(self, leaf: int) -> None:
        nodes = self._path_nodes(leaf)
        writes = []
        # Greedy eviction: deepest node first; a stash block may settle in
        # a node iff that node lies on the block's assigned-leaf path too.
        for node in reversed(nodes):
            depth = node.bit_length() - 1
            placed: list[tuple[str, int, bytes]] = []
            for key in list(self.stash):
                if len(placed) >= self.z:
                    break
                block_leaf = self.position[key]
                block_node_at_depth = (self.leaves + block_leaf) >> (
                    self.levels - 1 - depth
                )
                if block_node_at_depth == node:
                    placed.append((key, block_leaf, self.stash.pop(key)))
            writes.append((self._node_id(node), self._encode_bucket(placed)))
        self.store.multi_put(writes)
        self.stats.buckets_written += len(writes)

    def _evict_along(self, leaf: int) -> None:
        """Initialization helper: read+write one path to drain the stash."""
        self._read_path_into_stash(leaf)
        self._write_path_from_stash(leaf)

    # ------------------------------------------------------------------
    # convenience API
    # ------------------------------------------------------------------
    def get(self, key: str) -> bytes:
        return self.access(Operation.READ, key)

    def put(self, key: str, value: bytes) -> None:
        self.access(Operation.WRITE, key, value)

    def execute(self, request: TraceRequest) -> bytes:
        return self.access(request.op, request.key, request.value)

    @property
    def path_length(self) -> int:
        """Buckets touched per direction per access: L+1."""
        return self.levels
