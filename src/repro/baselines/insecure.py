"""The insecure baseline: direct, plaintext access to the server (§8.1).

"Clients directly store and query data from Redis.  This baseline performs
no data encryption nor executes any algorithm to ensure obliviousness."
It exists to price obliviousness: the paper reports it outperforming
Waffle by 5.8-6.04x.
"""

from __future__ import annotations

from repro.storage.base import StorageBackend
from repro.workloads.trace import Operation, TraceRequest

__all__ = ["InsecureStore"]


class InsecureStore:
    """Plaintext pass-through client."""

    def __init__(self, store: StorageBackend, items: dict[str, bytes]) -> None:
        self.store = store
        self.operations = 0
        store.multi_put(items.items())  # oblint: disable=OBL101 -- deliberately insecure baseline (§8.1): it exists to price obliviousness

    def get(self, key: str) -> bytes:
        self.operations += 1
        return self.store.get(key)  # oblint: disable=OBL101 -- deliberately insecure baseline (§8.1): it exists to price obliviousness

    def put(self, key: str, value: bytes) -> None:
        self.operations += 1
        self.store.put(key, value)  # oblint: disable=OBL101 -- deliberately insecure baseline (§8.1): it exists to price obliviousness

    def delete(self, key: str) -> None:
        self.operations += 1
        self.store.delete(key)  # oblint: disable=OBL101 -- deliberately insecure baseline (§8.1): it exists to price obliviousness

    def execute(self, request: TraceRequest) -> bytes | None:
        """Run one workload trace request."""
        if request.op is Operation.READ:
            return self.get(request.key)
        self.put(request.key, request.value)
        return None
