"""Recursive PathORAM: the position map outsourced to smaller ORAMs.

The basic :class:`~repro.baselines.pathoram.PathOram` keeps an O(N)
position map client-side.  The original construction (Stefanov et al.
§6) removes it by storing the map itself in a smaller PathORAM — leaves
packed χ-per-block — recursing until the top-level map fits client-side.
Waffle's §2 contrasts its own O(N) *timestamp* state against ORAM's
position map, so having both variants makes that comparison concrete:
recursion trades client state for a multiplicative log factor in
accesses (each data access costs one path per recursion level).

Design notes:

* every block carries its assigned leaf alongside its value in the
  stash, so only the *requested* key needs a position lookup per access
  (one recursive chain), not every stash block;
* the recursion stores positions as fixed-width integers packed
  ``pack_factor`` to a block;
* levels are plain :class:`PathOram` instances over the same (or a
  separate) backend; their own position maps are the next level up.
"""

from __future__ import annotations

import math
import random

from repro.baselines.pathoram import PathOram
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.seeding import seeded_rng
from repro.storage.base import StorageBackend
from repro.workloads.trace import Operation, TraceRequest

__all__ = ["RecursivePathOram"]

_LEAF_WIDTH = 4  # bytes per packed leaf pointer


class _OramPositionMap:
    """Dict-like position map backed by a (recursively built) PathORAM.

    Keys are the *indices* 0..n-1 of the level below (string keys are
    translated by the owner); values are leaf integers.
    """

    def __init__(self, n: int, leaves_below: int, store: StorageBackend,
                 pack_factor: int, client_threshold: int,
                 keychain: KeyChain, rng: random.Random, depth: int) -> None:
        self.n = n
        self.pack = pack_factor
        blocks = math.ceil(n / pack_factor)
        initial = {
            i: rng.randrange(leaves_below) for i in range(n)
        }
        if blocks <= client_threshold:
            # Recursion bottoms out: keep this level client-side.
            self._client_map: dict[int, int] | None = dict(initial)
            self._oram: PathOram | None = None
            return
        self._client_map = None
        items = {}
        for block_index in range(blocks):
            chunk = [
                initial.get(block_index * pack_factor + offset, 0)
                for offset in range(pack_factor)
            ]
            items[self._block_key(block_index)] = b"".join(
                leaf.to_bytes(_LEAF_WIDTH, "big") for leaf in chunk)
        self._oram = PathOram(
            items, store,
            keychain=keychain,
            seed=rng.randrange(2**63),
        )
        # The PathOram above holds its own position dict; a further
        # recursion level would replace it the same way.  One level of
        # recursion already demonstrates (and tests) the construction;
        # deeper nesting multiplies cost identically.
        self.depth = depth

    @staticmethod
    def _block_key(block_index: int) -> str:
        return f"posmap:{block_index:010d}"

    def __getitem__(self, index: int) -> int:
        if self._client_map is not None:
            return self._client_map[index]
        block, offset = divmod(index, self.pack)
        blob = self._oram.get(self._block_key(block))
        start = offset * _LEAF_WIDTH
        return int.from_bytes(blob[start:start + _LEAF_WIDTH], "big")

    def __setitem__(self, index: int, leaf: int) -> None:
        if self._client_map is not None:
            self._client_map[index] = leaf
            return
        block, offset = divmod(index, self.pack)
        key = self._block_key(block)
        blob = bytearray(self._oram.get(key))
        start = offset * _LEAF_WIDTH
        blob[start:start + _LEAF_WIDTH] = leaf.to_bytes(_LEAF_WIDTH, "big")
        self._oram.put(key, bytes(blob))

    def exchange(self, index: int, leaf: int) -> int:
        """Read the current leaf and install a new one (one ORAM access
        for the read, one for the write when outsourced)."""
        current = self[index]
        self[index] = leaf
        return current

    @property
    def client_entries(self) -> int:
        if self._client_map is not None:
            return len(self._client_map)
        return len(self._oram.position)  # the next level's map


class RecursivePathOram:
    """PathORAM whose position map lives in a smaller ORAM.

    Parameters
    ----------
    items:
        Initial key-value mapping.
    store:
        Backend for the data tree AND the position-map tree (separate
        key prefixes; a deployment could split them).
    pack_factor:
        Position pointers per map block (χ).
    client_threshold:
        Recursion stops once a map level has at most this many blocks.
    """

    def __init__(self, items: dict[str, bytes], store: StorageBackend,
                 bucket_size: int = 4, pack_factor: int = 16,
                 client_threshold: int = 16,
                 keychain: KeyChain | None = None,
                 seed: int | None = None) -> None:
        if not items:
            raise ConfigurationError("need a non-empty dataset")
        if pack_factor < 1 or client_threshold < 1:
            raise ConfigurationError("invalid recursion parameters")
        self.keychain = keychain if keychain is not None else KeyChain()
        rng = seeded_rng(seed)
        self.n = len(items)
        self.z = bucket_size
        self.levels = max(1, math.ceil(math.log2(max(2, self.n)))) + 1
        self.leaves = 2 ** (self.levels - 1)
        self.store = store
        self._rng = rng
        self._key_index = {key: i for i, key in enumerate(sorted(items))}
        self.position_map = _OramPositionMap(
            self.n, self.leaves, store, pack_factor, client_threshold,
            self.keychain, rng, depth=1,
        )
        # Stash entries carry (leaf, value) so write-back never needs a
        # position lookup.
        self._stash: dict[str, tuple[int, bytes]] = {}
        self.accesses = 0

        empty = self._data_oram_bucket([])
        store.multi_put(
            (self._node_id(node), empty)
            for node in range(1, 2 ** self.levels)
        )
        for key, value in items.items():
            index = self._key_index[key]
            leaf = self.position_map[index]
            self._stash[key] = (leaf, value)
            self._evict_along(leaf)

    # ------------------------------------------------------------------
    # tree plumbing (leaf travels with the block)
    # ------------------------------------------------------------------
    def _node_id(self, node: int) -> str:
        return f"roram:node:{node:08d}"

    def _path_nodes(self, leaf: int) -> list[int]:
        node = self.leaves + leaf
        path = []
        while node >= 1:
            path.append(node)
            node //= 2
        path.reverse()
        return path

    def _data_oram_bucket(self, blocks: list[tuple[str, int, bytes]]) -> bytes:
        parts = []
        for key, leaf, value in blocks:
            kb = key.encode("utf-8")
            parts.append(len(kb).to_bytes(2, "big") + kb
                         + leaf.to_bytes(4, "big")
                         + len(value).to_bytes(4, "big") + value)
        return self.keychain.cipher.encrypt(b"".join(parts))

    def _decode_bucket(self, blob: bytes) -> list[tuple[str, int, bytes]]:
        raw = self.keychain.cipher.decrypt(blob)
        blocks = []
        cursor = 0
        while cursor < len(raw):
            klen = int.from_bytes(raw[cursor:cursor + 2], "big")
            cursor += 2
            key = raw[cursor:cursor + klen].decode("utf-8")
            cursor += klen
            leaf = int.from_bytes(raw[cursor:cursor + 4], "big")
            cursor += 4
            vlen = int.from_bytes(raw[cursor:cursor + 4], "big")
            cursor += 4
            blocks.append((key, leaf, raw[cursor:cursor + vlen]))
            cursor += vlen
        return blocks

    def _read_path(self, leaf: int) -> None:
        nodes = self._path_nodes(leaf)
        blobs = self.store.multi_get([self._node_id(n) for n in nodes])
        for blob in blobs:
            for key, block_leaf, value in self._decode_bucket(blob):
                self._stash[key] = (block_leaf, value)

    def _write_path(self, leaf: int) -> None:
        nodes = self._path_nodes(leaf)
        writes = []
        for node in reversed(nodes):
            depth = node.bit_length() - 1
            placed: list[tuple[str, int, bytes]] = []
            for key in list(self._stash):
                if len(placed) >= self.z:
                    break
                block_leaf, value = self._stash[key]
                node_at_depth = (self.leaves + block_leaf) >> (
                    self.levels - 1 - depth)
                if node_at_depth == node:
                    placed.append((key, block_leaf, value))
                    del self._stash[key]
            writes.append((self._node_id(node), self._data_oram_bucket(placed)))
        self.store.multi_put(writes)

    def _evict_along(self, leaf: int) -> None:
        self._read_path(leaf)
        self._write_path(leaf)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def access(self, op: Operation, key: str,
               value: bytes | None = None) -> bytes:
        if key not in self._key_index:
            raise KeyNotFoundError(key)
        index = self._key_index[key]
        new_leaf = self._rng.randrange(self.leaves)
        old_leaf = self.position_map.exchange(index, new_leaf)
        self._read_path(old_leaf)
        if key not in self._stash:  # pragma: no cover - defensive
            raise KeyNotFoundError(key)
        stored_leaf, stored_value = self._stash[key]
        if op is Operation.WRITE:
            if value is None:
                raise ConfigurationError("write access requires a value")
            stored_value = value
        self._stash[key] = (new_leaf, stored_value)
        self._write_path(old_leaf)
        self.accesses += 1
        return stored_value

    def get(self, key: str) -> bytes:
        return self.access(Operation.READ, key)

    def put(self, key: str, value: bytes) -> None:
        self.access(Operation.WRITE, key, value)

    def execute(self, request: TraceRequest) -> bytes:
        return self.access(request.op, request.key, request.value)

    @property
    def stash_size(self) -> int:
        return len(self._stash)

    @property
    def client_state_entries(self) -> int:
        """Client-side position entries after recursion (≪ N)."""
        return self.position_map.client_entries
