"""TaoStore (Sahin et al., S&P 2016) — a concurrent tree-ORAM datastore.

TaoStore serves *asynchronous, concurrent* clients over a tree ORAM:

* a **sequencer** assigns a global order to incoming requests and ensures
  responses respect it (linearizability);
* the **processor** fetches the requested block's path; concurrent
  requests for a key whose path is already in flight trigger a *fake
  read* (a random path) so the adversary still sees one path per request;
* fetched paths are held in an in-memory **subtree**; responses are
  answered from it immediately, decoupling response time from write-back;
* every ``k`` completed accesses (the write-back threshold), the subtree
  is flushed: blocks are re-assigned fresh leaves and the dirty paths are
  written back re-encrypted.

This reproduction keeps the same structure in a single-threaded event
style: ``submit`` enqueues, ``drain`` processes in sequence order, and the
flush happens every ``write_back_threshold`` accesses — the adversary's
view (one path read per request, batched path write-backs) and the cost
profile (Θ(log N) buckets moved per request) match the original system.
The 102x throughput gap to Waffle (§8.1) stems from exactly this profile:
every request pays its own path fetch; nothing amortizes across clients.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass

from repro.crypto.keys import KeyChain
from repro.obs import OBS
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.seeding import seeded_rng
from repro.storage.base import StorageBackend
from repro.workloads.trace import Operation, TraceRequest

__all__ = ["TaoStore", "TaoStoreStats"]


@dataclass(slots=True)
class TaoStoreStats:
    accesses: int = 0
    fake_reads: int = 0
    buckets_read: int = 0
    buckets_written: int = 0
    flushes: int = 0
    max_subtree: int = 0


class TaoStore:
    """Concurrent ORAM datastore with sequencer and deferred write-back.

    Parameters
    ----------
    items:
        Initial dataset (defines N).
    store:
        Untrusted server.
    bucket_size:
        Z, blocks per bucket.
    write_back_threshold:
        Flush the subtree after this many accesses (TaoStore's ``k``).
    """

    def __init__(self, items: dict[str, bytes], store: StorageBackend,
                 bucket_size: int = 4, write_back_threshold: int = 8,
                 keychain: KeyChain | None = None, seed: int | None = None) -> None:
        if not items:
            raise ConfigurationError("TaoStore needs a non-empty dataset")
        if write_back_threshold < 1:
            raise ConfigurationError("write-back threshold must be positive")
        self.n = len(items)
        self.z = bucket_size
        self.levels = max(1, math.ceil(math.log2(max(2, self.n)))) + 1
        self.leaves = 2 ** (self.levels - 1)
        self.store = store
        self.keychain = keychain if keychain is not None else KeyChain()
        self._rng = seeded_rng(seed)
        self.write_back_threshold = write_back_threshold
        self.stats = TaoStoreStats()

        self.position: dict[str, int] = {}
        #: The in-memory subtree: node -> list of blocks; None = not fetched.
        self._subtree: dict[int, list[tuple[str, int, bytes]]] = {}
        #: Blocks lifted out of fetched buckets, keyed by name.
        self._pending_blocks: dict[str, bytes] = {}
        self._sequencer: deque[tuple[int, TraceRequest, list]] = deque()
        self._sequence = 0
        self._since_flush = 0
        self._in_flight: set[str] = set()

        empty = self._encode_bucket([])
        self.store.multi_put(
            (self._node_id(node), empty) for node in range(1, 2 ** self.levels)
        )
        # Bulk initial placement, then one full flush.
        for key, value in items.items():
            self.position[key] = self._rng.randrange(self.leaves)
            self._pending_blocks[key] = value
        self._flush(initial=True)
        self.stats = TaoStoreStats()

    # ------------------------------------------------------------------
    # encoding helpers (same block format as PathORAM)
    # ------------------------------------------------------------------
    def _node_id(self, node: int) -> str:
        return f"tao:node:{node:08d}"

    def _path_nodes(self, leaf: int) -> list[int]:
        node = self.leaves + leaf
        path = []
        while node >= 1:
            path.append(node)
            node //= 2
        path.reverse()
        return path

    def _encode_bucket(self, blocks: list[tuple[str, int, bytes]]) -> bytes:
        parts = []
        for key, leaf, value in blocks:
            kb = key.encode("utf-8")
            parts.append(len(kb).to_bytes(2, "big") + kb
                         + leaf.to_bytes(4, "big")
                         + len(value).to_bytes(4, "big") + value)
        return self.keychain.cipher.encrypt(b"".join(parts))

    def _decode_bucket(self, blob: bytes) -> list[tuple[str, int, bytes]]:
        raw = self.keychain.cipher.decrypt(blob)
        blocks = []
        cursor = 0
        while cursor < len(raw):
            klen = int.from_bytes(raw[cursor:cursor + 2], "big")
            cursor += 2
            key = raw[cursor:cursor + klen].decode("utf-8")
            cursor += klen
            leaf = int.from_bytes(raw[cursor:cursor + 4], "big")
            cursor += 4
            vlen = int.from_bytes(raw[cursor:cursor + 4], "big")
            cursor += 4
            blocks.append((key, leaf, raw[cursor:cursor + vlen]))
            cursor += vlen
        return blocks

    # ------------------------------------------------------------------
    # client interface
    # ------------------------------------------------------------------
    def submit(self, request: TraceRequest) -> list:
        """Sequencer entry point: enqueue a request, return its result slot."""
        if request.key not in self.position:
            raise KeyNotFoundError(request.key)
        result: list = []
        self._sequence += 1
        self._sequencer.append((self._sequence, request, result))
        return result

    def drain(self) -> int:
        """Process every queued request in sequence order."""
        served = 0
        while self._sequencer:
            _, request, result = self._sequencer.popleft()
            result.append(self._process(request))
            served += 1
        return served

    def execute(self, request: TraceRequest) -> bytes:
        result = self.submit(request)
        self.drain()
        return result[0]

    def get(self, key: str) -> bytes:
        return self.execute(TraceRequest(Operation.READ, key))

    def put(self, key: str, value: bytes) -> None:
        self.execute(TraceRequest(Operation.WRITE, key, value))

    # ------------------------------------------------------------------
    # processor
    # ------------------------------------------------------------------
    def _process(self, request: TraceRequest) -> bytes:
        key = request.key
        obs = OBS
        observing = obs.enabled
        if observing:
            _t0 = time.perf_counter()
            _reads0 = self.stats.buckets_read
            _writes0 = self.stats.buckets_written
            _fakes0 = self.stats.fake_reads
        if key in self._pending_blocks or key in self._in_flight:
            # The block is already client-side; issue a fake read of a
            # random path so the adversary still observes one path fetch.
            self._fetch_path(self._rng.randrange(self.leaves))
            self.stats.fake_reads += 1
        else:
            self._fetch_path(self.position[key])
            self._in_flight.add(key)
        if key not in self._pending_blocks:  # pragma: no cover - defensive
            raise KeyNotFoundError(key)

        # Fresh leaf on every access: non-static ids, like PathORAM.
        self.position[key] = self._rng.randrange(self.leaves)
        if request.op is Operation.WRITE:
            self._pending_blocks[key] = request.value
        value = self._pending_blocks[key]

        self.stats.accesses += 1
        self._since_flush += 1
        self.stats.max_subtree = max(self.stats.max_subtree, len(self._subtree))
        if self._since_flush >= self.write_back_threshold:
            self._flush()
        if observing:
            # One sequenced access = one "round"; the flush (if it fired)
            # is inside the span, matching how clients experience it.
            labels = {"system": "taostore"}
            reg = obs.registry
            reg.counter("rounds.total", **labels).inc()
            reg.counter("requests.total", **labels).inc()
            reg.counter("batch.real.total", **labels).inc()
            reg.counter("batch.fake_dummy.total", **labels).inc(
                self.stats.fake_reads - _fakes0)
            reg.counter("server.reads.total", **labels).inc(
                self.stats.buckets_read - _reads0)
            reg.counter("server.writes.total", **labels).inc(
                self.stats.buckets_written - _writes0)
            reg.gauge("cache.size", **labels).set(len(self._pending_blocks))
            obs.observe_span("round", time.perf_counter() - _t0,
                             labels=labels, round=self.stats.accesses,
                             requests=1, real=1,
                             fake_reads=self.stats.fake_reads - _fakes0)
        return value

    def _fetch_path(self, leaf: int) -> None:
        nodes = self._path_nodes(leaf)
        missing = [node for node in nodes if node not in self._subtree]
        if missing:
            blobs = self.store.multi_get([self._node_id(n) for n in missing])
            self.stats.buckets_read += len(missing)
            for node, blob in zip(missing, blobs):
                blocks = self._decode_bucket(blob)
                self._subtree[node] = []
                for block_key, _, value in blocks:
                    self._pending_blocks.setdefault(block_key, value)

    def _flush(self, initial: bool = False) -> None:
        """Write every pending block back along fresh greedy placements.

        Blocks that do not fit into the currently-held subtree nodes of
        their assigned path stay pending (TaoStore's stash); on the next
        flush they try again.  The initial flush materializes the whole
        tree.
        """
        if initial:
            nodes = set(range(1, 2 ** self.levels))
        else:
            nodes = set(self._subtree)
            if not nodes and not self._pending_blocks:
                return
        occupancy: dict[int, list[tuple[str, int, bytes]]] = {
            node: [] for node in sorted(nodes)
        }
        still_pending: dict[str, bytes] = {}
        for key, value in self._pending_blocks.items():
            leaf = self.position[key]
            placed = False
            for node in reversed(self._path_nodes(leaf)):
                if node in occupancy and len(occupancy[node]) < self.z:
                    occupancy[node].append((key, leaf, value))
                    placed = True
                    break
            if not placed:
                still_pending[key] = value
        writes = [
            (self._node_id(node), self._encode_bucket(blocks))
            for node, blocks in occupancy.items()
        ]
        self.store.multi_put(writes)
        self.stats.buckets_written += len(writes)
        self.stats.flushes += 1
        self._pending_blocks = still_pending
        self._subtree = {}
        self._in_flight = set()
        self._since_flush = 0

    @property
    def path_length(self) -> int:
        return self.levels
