"""Baseline systems the paper compares against (§8.1).

* :class:`InsecureStore` — clients talk to the key-value server directly,
  no encryption, no obliviousness (the "cost of privacy" yardstick);
* :mod:`repro.baselines.pancake` — Pancake (USENIX Security '20):
  frequency smoothing with replicas + fake queries under a known input
  distribution, static storage ids, updateCache for write propagation;
* :class:`PathOram` — PathORAM (CCS '13), the classic tree ORAM;
* :class:`TaoStore` — TaoStore (S&P '16), a concurrent tree-ORAM
  datastore with a sequencer and asynchronous write-back.

All are implemented from scratch against the same
:class:`~repro.storage.base.StorageBackend` interface as Waffle so the
adversary recorder and the cost model apply uniformly.
"""

from repro.baselines.insecure import InsecureStore
from repro.baselines.pancake import PancakeProxy, SmoothedDistribution
from repro.baselines.pathoram import PathOram
from repro.baselines.taostore import TaoStore

__all__ = [
    "InsecureStore",
    "PancakeProxy",
    "PathOram",
    "SmoothedDistribution",
    "TaoStore",
]
