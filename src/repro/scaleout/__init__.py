"""Scale-out substrate: hash-partitioned Waffle deployments.

The paper lists scalability as future work (§10).  The natural scale-out
for Waffle is by key partitioning: each partition is an *independent*
Waffle instance (own proxy state, own parameters, own portion of the
server), so each partition's α,β-uniformity argument applies verbatim to
its own key population, and partitions share nothing that could
correlate their access sequences.  Keys route by a keyed hash of the
plaintext key — computed in the trusted domain, so the mapping itself is
not adversary-visible beyond which partition serves a batch.

Leakage note (documented, inherent): the adversary additionally learns
*how many requests hit each partition per round*.  With a keyed-hash
partitioner this is a balanced multinomial independent of key identity;
the cross-partition experiment in the tests verifies the per-partition
guarantees still hold.
"""

from repro.scaleout.partitioned import PartitionedWaffle

__all__ = ["PartitionedWaffle"]
