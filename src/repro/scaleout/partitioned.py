"""Hash-partitioned composition of independent Waffle instances."""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor

from repro.core.batch import ClientRequest, ClientResponse
from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, KeyNotFoundError

__all__ = ["PartitionedWaffle"]


class PartitionedWaffle:
    """Several independent Waffle datastores behind one request router.

    Parameters
    ----------
    config:
        Parameters for ONE partition sized for ``config.n`` keys per
        partition; every partition gets an identical (but independently
        seeded and keyed) copy.
    items:
        The full dataset; keys are hash-routed to partitions, and each
        partition must end up with exactly ``config.n`` keys — callers
        build partition-balanced datasets with :meth:`plan_partitions`.
    partitions:
        Number of partitions.
    master_seed:
        Seeds the per-partition keychains and the routing hash key.
    """

    def __init__(self, config: WaffleConfig, items: dict[str, bytes],
                 partitions: int, master_seed: int = 0,
                 record: bool = False, log_ids: bool = False,
                 shard_workers: int = 1) -> None:
        if partitions < 1:
            raise ConfigurationError("need at least one partition")
        if shard_workers < 1:
            raise ConfigurationError("need at least one shard worker")
        self.partitions = partitions
        self._route_key = hashlib.sha256(
            b"route:%d" % master_seed).digest()[:8]
        self._hasher_proto = hashlib.blake2s(key=self._route_key,
                                             digest_size=8)
        grouped: list[dict[str, bytes]] = [{} for _ in range(partitions)]
        for key, value in items.items():
            grouped[self.partition_of(key)][key] = value
        for index, group in enumerate(grouped):
            if len(group) != config.n:
                raise ConfigurationError(
                    f"partition {index} holds {len(group)} keys, "
                    f"config.n={config.n}; build the dataset with "
                    "plan_partitions()"
                )
        self.stores = [
            WaffleDatastore(
                config, grouped[index],
                keychain=KeyChain.from_seed(master_seed * 1000 + index),
                record=record, log_ids=log_ids,
            )
            for index in range(partitions)
        ]
        self.config = config
        #: Shard-parallel dispatch: partitions are fully independent
        #: deployments (disjoint proxies, keychains, servers, recorders),
        #: so their rounds may run concurrently.  The merge below is
        #: deterministic and each partition's adversary trace is the
        #: byte-identical sequence serial execution produces — only the
        #: interleaving *between* partitions (which the per-partition
        #: adversary never sees) changes.
        self._executor: ThreadPoolExecutor | None = None
        if shard_workers > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=min(shard_workers, partitions),
                thread_name_prefix="shard")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def partition_of(self, key: str) -> int:
        # Copying a pre-keyed hasher skips blake2s key-block setup per
        # call — this is the serving hot path (every routed get/put).
        hasher = self._hasher_proto.copy()
        hasher.update(key.encode("utf-8"))
        return int.from_bytes(hasher.digest(), "big") % self.partitions

    def partition_of_many(self, keys) -> list[int]:
        """Bulk router: one pass, no per-key attribute lookups.

        Byte-identical to calling :meth:`partition_of` per key — the
        batched request path and dataset construction route through
        here so the hasher-copy fast path is exercised everywhere.
        """
        proto = self._hasher_proto
        partitions = self.partitions
        out = []
        for key in keys:
            hasher = proto.copy()
            hasher.update(key.encode("utf-8"))
            out.append(int.from_bytes(hasher.digest(), "big") % partitions)
        return out

    @classmethod
    def plan_partitions(cls, candidate_keys, per_partition: int,
                        partitions: int, master_seed: int = 0) -> list[str]:
        """Select keys from ``candidate_keys`` so each partition receives
        exactly ``per_partition`` of them (callers generate values for the
        returned keys).  Raises if the candidates cannot fill the plan.
        """
        planner = cls.__new__(cls)
        planner.partitions = partitions
        planner._route_key = hashlib.sha256(
            b"route:%d" % master_seed).digest()[:8]
        planner._hasher_proto = hashlib.blake2s(key=planner._route_key,
                                                digest_size=8)
        buckets: list[list[str]] = [[] for _ in range(partitions)]
        for key in candidate_keys:
            index = planner.partition_of(key)
            if len(buckets[index]) < per_partition:
                buckets[index].append(key)
            if all(len(b) >= per_partition for b in buckets):
                break
        if not all(len(b) >= per_partition for b in buckets):
            raise ConfigurationError(
                "not enough candidate keys to balance the partitions"
            )
        return [key for bucket in buckets for key in bucket]

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def execute_batch(self, requests: list[ClientRequest],
                      ) -> list[ClientResponse]:
        """Route a batch: each partition executes its share (≤ R each).

        Responses return in the order of ``requests``.
        """
        shares: dict[int, list[ClientRequest]] = {}
        owners = self.partition_of_many(request.key for request in requests)
        for request, owner in zip(requests, owners):
            shares.setdefault(owner, []).append(request)
        by_id: dict[int, ClientResponse] = {}
        r = self.config.r

        def run_share(index: int,
                      share: list[ClientRequest]) -> list[ClientResponse]:
            # A partition accepts at most R requests per round; larger
            # shares run as consecutive rounds.
            responses: list[ClientResponse] = []
            for start in range(0, len(share), r):
                responses.extend(
                    self.stores[index].execute_batch(share[start: start + r]))
            return responses

        if self._executor is None:
            share_results = [run_share(index, share)
                             for index, share in shares.items()]
        else:
            # Deterministic merge: futures are gathered in fixed partition
            # order regardless of completion order, and responses key by
            # request_id, so the output is identical to serial execution.
            futures = [self._executor.submit(run_share, index, share)
                       for index, share in sorted(shares.items())]
            share_results = [future.result() for future in futures]
        for responses in share_results:
            for response in responses:
                by_id[response.request_id] = response
        return [by_id[request.request_id] for request in requests]

    def insert(self, key: str, value: bytes) -> None:
        self.stores[self.partition_of(key)].insert(key, value)

    def delete(self, key: str) -> None:
        self.stores[self.partition_of(key)].delete(key)

    def contains_key(self, key: str) -> bool:
        return self.stores[self.partition_of(key)].proxy.contains_key(key)

    def close(self) -> None:
        """Shut down the shard executor (no-op for serial dispatch)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def total_keys(self) -> int:
        return sum(store.proxy.real_count for store in self.stores)

    def rounds_per_partition(self) -> list[int]:
        return [store.proxy.totals.rounds for store in self.stores]


def lookup_partition(store: PartitionedWaffle, key: str) -> WaffleDatastore:
    """The datastore currently responsible for ``key``."""
    if not store.contains_key(key):
        raise KeyNotFoundError(key)
    return store.stores[store.partition_of(key)]
