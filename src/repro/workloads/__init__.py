"""Workload substrate: YCSB, Zipfian sampling, correlated clickstreams.

The paper evaluates with YCSB workloads A (50/50 read-write) and C (read
only) at Zipf 0.99 (§8), and with an IHOP-style correlated clickstream over
500 keys (§8.3.2).  This package generates all of them, plus the uniform
control distribution used by Table 2 and Figure 4.
"""

from repro.workloads.correlated import ClickstreamModel, CorrelatedWorkload
from repro.workloads.openloop import (
    Arrival,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
)
from repro.workloads.trace import Operation, TraceRequest, replay
from repro.workloads.ycsb import (
    LatestWorkload,
    YcsbWorkload,
    workload_a,
    workload_b,
    workload_c,
    workload_d,
)
from repro.workloads.zipf import HotspotSampler, UniformSampler, ZipfSampler

__all__ = [
    "Arrival",
    "ClickstreamModel",
    "CorrelatedWorkload",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "HotspotSampler",
    "PoissonArrivals",
    "LatestWorkload",
    "Operation",
    "TraceRequest",
    "UniformSampler",
    "YcsbWorkload",
    "ZipfSampler",
    "replay",
    "workload_a",
    "workload_b",
    "workload_c",
    "workload_d",
]
