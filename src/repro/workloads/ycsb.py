"""YCSB workload generator (Cooper et al., SoCC 2010).

The paper benchmarks with YCSB workloads A (50% reads / 50% writes) and C
(100% reads) over 2^20 keys with 8-byte keys and 1 KiB values at Zipf 0.99
(§8).  This module reproduces the YCSB core-workload request mix; the
factory helpers below mirror the standard workload letters so the
benchmark harness can reference them by name.

Keys follow the YCSB convention ``user<number>`` zero-padded to a fixed
width so all keys have equal length (the paper's equal-length assumption,
§3.1).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import ConfigurationError
from repro.seeding import seeded_rng
from repro.workloads.trace import Operation, TraceRequest
from repro.workloads.zipf import UniformSampler, ZipfSampler

__all__ = [
    "YcsbWorkload",
    "key_name",
    "workload_a",
    "workload_b",
    "workload_c",
]

#: Zero-pad width; 8-byte keys as in the paper ("user" + 8 digits overall
#: key of fixed length).
_KEY_WIDTH = 8


def key_name(index: int) -> str:
    """Canonical fixed-width key for a key index."""
    return f"user{index:0{_KEY_WIDTH}d}"


class YcsbWorkload:
    """A YCSB-style request stream.

    Parameters
    ----------
    n:
        Number of records.
    read_proportion:
        Fraction of requests that are reads; the rest are writes (updates).
    theta:
        Zipf skew (0.99 in the paper); ``uniform=True`` overrides it.
    uniform:
        Draw keys uniformly instead of Zipf (Table 2's 'Uniform' rows).
    value_size:
        Payload size in bytes (paper: 1 KiB).
    seed:
        Master seed; the key sampler, operation coin and value bytes all
        derive from it, so traces are fully reproducible.
    """

    def __init__(self, n: int, read_proportion: float, theta: float = 0.99,
                 uniform: bool = False, value_size: int = 1024,
                 seed: int | None = None) -> None:
        if not 0.0 <= read_proportion <= 1.0:
            raise ConfigurationError("read_proportion must be in [0, 1]")
        if value_size <= 0:
            raise ConfigurationError("value_size must be positive")
        self.n = n
        self.read_proportion = read_proportion
        self.value_size = value_size
        master = seeded_rng(seed)
        sampler_seed = master.randrange(2**63)
        self._op_rng = random.Random(master.randrange(2**63))
        self._value_rng = random.Random(master.randrange(2**63))
        if uniform:
            self._sampler = UniformSampler(n, seed=sampler_seed)
        else:
            self._sampler = ZipfSampler(n, theta=theta, seed=sampler_seed)

    # ------------------------------------------------------------------
    # dataset
    # ------------------------------------------------------------------
    def initial_records(self) -> Iterator[tuple[str, bytes]]:
        """The load phase: every key with an initial value."""
        for index in range(self.n):
            yield key_name(index), self._make_value(index)

    def _make_value(self, salt: int) -> bytes:
        # Deterministic but distinct payloads; content is irrelevant to the
        # protocols, only its size matters.
        prefix = salt.to_bytes(8, "big", signed=False)
        filler = self._value_rng.randbytes(max(0, self.value_size - 8))
        return (prefix + filler)[: self.value_size]

    # ------------------------------------------------------------------
    # request stream
    # ------------------------------------------------------------------
    def request(self) -> TraceRequest:
        """Draw one request."""
        index = self._sampler.sample()
        key = key_name(index)
        if self._op_rng.random() < self.read_proportion:
            return TraceRequest(Operation.READ, key)
        return TraceRequest(Operation.WRITE, key, self._make_value(index))

    def requests(self, count: int) -> Iterator[TraceRequest]:
        """Yield ``count`` requests."""
        for _ in range(count):
            yield self.request()

    def trace(self, count: int) -> list[TraceRequest]:
        """Materialize ``count`` requests as a list."""
        return list(self.requests(count))


def workload_a(n: int, **kwargs) -> YcsbWorkload:
    """YCSB Workload A: 50% reads, 50% updates (the paper's write-heavy mix)."""
    return YcsbWorkload(n, read_proportion=0.5, **kwargs)


def workload_b(n: int, **kwargs) -> YcsbWorkload:
    """YCSB Workload B: 95% reads, 5% updates."""
    return YcsbWorkload(n, read_proportion=0.95, **kwargs)


def workload_c(n: int, **kwargs) -> YcsbWorkload:
    """YCSB Workload C: 100% reads (the paper's read-only mix)."""
    return YcsbWorkload(n, read_proportion=1.0, **kwargs)


class LatestWorkload:
    """YCSB Workload D: 95% reads of *recent* records, 5% inserts.

    The read distribution is "latest": the probability of reading a
    record decays (Zipf-shaped) with its age, so freshly inserted keys
    are the hottest.  Inserts create brand-new keys — against Waffle
    they exercise the dummy-swap mutation path (§6.2).

    Parameters
    ----------
    n:
        Initially loaded records (inserted records extend the space).
    read_proportion:
        YCSB D default 0.95.
    """

    def __init__(self, n: int, read_proportion: float = 0.95,
                 theta: float = 0.99, value_size: int = 1024,
                 seed: int | None = None) -> None:
        if not 0.0 <= read_proportion <= 1.0:
            raise ConfigurationError("read_proportion must be in [0, 1]")
        self.n = n
        self.record_count = n
        self.read_proportion = read_proportion
        self.value_size = value_size
        self._theta = theta
        master = seeded_rng(seed)
        self._op_rng = random.Random(master.randrange(2**63))
        self._age_rng = random.Random(master.randrange(2**63))
        self._value_rng = random.Random(master.randrange(2**63))

    def initial_records(self) -> Iterator[tuple[str, bytes]]:
        for index in range(self.n):
            yield key_name(index), self._make_value(index)

    def _make_value(self, salt: int) -> bytes:
        prefix = salt.to_bytes(8, "big", signed=False)
        filler = self._value_rng.randbytes(max(0, self.value_size - 8))
        return (prefix + filler)[: self.value_size]

    def _latest_index(self) -> int:
        # Read-latest: age drawn from a power-shaped law concentrated at
        # zero (u^3 puts ~80% of reads in the newest half and ~46% in the
        # newest tenth), approximating YCSB's SkewedLatestGenerator
        # without rebuilding a Zipf table as the record count grows.
        u = self._age_rng.random()
        age = min(int(self.record_count * u ** 3), self.record_count - 1)
        return self.record_count - 1 - age

    def request(self) -> TraceRequest:
        if self._op_rng.random() < self.read_proportion:
            return TraceRequest(Operation.READ,
                                key_name(self._latest_index()))
        index = self.record_count
        self.record_count += 1
        return TraceRequest(Operation.INSERT, key_name(index),
                            self._make_value(index))

    def requests(self, count: int) -> Iterator[TraceRequest]:
        for _ in range(count):
            yield self.request()

    def trace(self, count: int) -> list[TraceRequest]:
        return list(self.requests(count))


def workload_d(n: int, **kwargs) -> LatestWorkload:
    """YCSB Workload D: read-latest with inserts."""
    return LatestWorkload(n, read_proportion=0.95, **kwargs)
