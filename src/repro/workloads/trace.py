"""Request trace types shared by all workload generators.

A trace is a list of :class:`TraceRequest` objects — the ``S_Proxy``
sequence of the security definition (§5.1).  Every generator in this
package produces traces; every system driver consumes them, so systems are
always compared on byte-identical input sequences.

Traces serialize to a line-oriented text format (:func:`save_trace` /
:func:`load_trace`) so an experiment's exact input sequence can be
archived and replayed elsewhere — the reproduction-of-the-reproduction
path.
"""

from __future__ import annotations

import base64
import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

__all__ = ["Operation", "TraceRequest", "load_trace", "replay", "save_trace"]


class Operation(enum.Enum):
    """Client-visible operation kinds.

    ``INSERT`` creates a brand-new key (YCSB workload D's insert mix);
    in Waffle it routes through the dummy-swap mutation path (§6.2)
    rather than the batch, so drivers handle it separately.
    """

    READ = "read"
    WRITE = "write"
    INSERT = "insert"


@dataclass(frozen=True, slots=True)
class TraceRequest:
    """One client request: operation, plaintext key, optional write value."""

    op: Operation
    key: str
    value: bytes | None = None

    def __post_init__(self) -> None:
        if self.op in (Operation.WRITE, Operation.INSERT) \
                and self.value is None:
            raise ValueError(f"{self.op.value} requests require a value")
        if self.op is Operation.READ and self.value is not None:
            raise ValueError("read requests must not carry a value")


def replay(trace: Iterable[TraceRequest], handler: Callable[[TraceRequest], object]) -> int:
    """Feed every request of ``trace`` to ``handler``; return the count."""
    count = 0
    for request in trace:
        handler(request)
        count += 1
    return count


def save_trace(trace: Iterable[TraceRequest], path: str | Path) -> int:
    """Write a trace as one record per line: ``op key [base64-value]``.

    Keys must not contain whitespace (all generators in this package use
    ``user<digits>``-style names).  Returns the number of records.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as out:
        for request in trace:
            if any(c.isspace() for c in request.key):
                raise ValueError(f"key not serializable: {request.key!r}")
            if request.value is None:
                out.write(f"{request.op.value} {request.key}\n")
            else:
                encoded = base64.b64encode(request.value).decode("ascii")
                out.write(f"{request.op.value} {request.key} {encoded}\n")
            count += 1
    return count


def load_trace(path: str | Path) -> list[TraceRequest]:
    """Inverse of :func:`save_trace`."""
    trace: list[TraceRequest] = []
    with open(path, "r", encoding="utf-8") as inp:
        for line_number, line in enumerate(inp, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split(" ")
            if len(parts) not in (2, 3):
                raise ValueError(f"malformed trace line {line_number}")
            op = Operation(parts[0])
            value = base64.b64decode(parts[2]) if len(parts) == 3 else None
            trace.append(TraceRequest(op, parts[1], value))
    return trace
