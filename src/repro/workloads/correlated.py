"""Correlated (clickstream-style) query workload — the §8.3.2 experiment.

The paper evaluates correlated queries with IHOP's Wikipedia Clickstream
setup: 500 articles, 500k queries whose *transitions* between articles are
correlated (a user reading article i follows a link to article j with
probability proportional to the clickstream counts).  The raw trace is not
distributable here, so we build the closest synthetic equivalent, per the
substitution rule in DESIGN.md:

* a first-order Markov chain over ``n`` keys;
* each key links to a small out-neighbourhood (power-law out-degree, like
  article link graphs), with power-law transition weights;
* the independent control is the paper's own construction — *the same
  trace, randomly shuffled* ("obtained by randomizing the correlated
  queries trace"), which exactly preserves marginal frequencies while
  destroying transitions.

What matters to both the IHOP-style co-occurrence attack and the
α-histogram comparison is the presence of strong pairwise transition
structure over a small key space, which this model provides.
"""

from __future__ import annotations

import random

from repro.seeding import seeded_rng
from repro.workloads.trace import Operation, TraceRequest
from repro.workloads.ycsb import key_name

__all__ = ["ClickstreamModel", "CorrelatedWorkload"]


class ClickstreamModel:
    """First-order Markov chain with power-law link structure.

    Parameters
    ----------
    n:
        Number of keys (paper/IHOP: 500).
    out_degree:
        Mean number of outgoing links per key.
    alpha:
        Power-law exponent for transition weights: the j-th preferred
        neighbour of a key gets weight ``(j+1)**-alpha``.
    seed:
        Seed for the (static) link graph.  The graph is part of the model,
        the walk consumes a separate RNG.
    """

    def __init__(self, n: int, out_degree: int = 8, alpha: float = 1.2,
                 seed: int | None = None) -> None:
        if n < 2:
            raise ValueError("clickstream model needs at least two keys")
        if out_degree < 1:
            raise ValueError("out_degree must be positive")
        self.n = n
        rng = seeded_rng(seed)
        self.neighbours: list[list[int]] = []
        self.weights: list[list[float]] = []
        for node in range(n):
            degree = max(1, min(n - 1, int(rng.paretovariate(1.5))))
            degree = min(max(degree, 1), max(1, out_degree * 2))
            chosen: list[int] = []
            while len(chosen) < degree:
                candidate = rng.randrange(n)
                if candidate != node and candidate not in chosen:
                    chosen.append(candidate)
            weights = [(j + 1) ** (-alpha) for j in range(len(chosen))]
            total = sum(weights)
            self.neighbours.append(chosen)
            self.weights.append([w / total for w in weights])

    def walk(self, length: int, seed: int | None = None) -> list[int]:
        """Generate a key-index sequence by walking the chain."""
        rng = seeded_rng(seed)
        current = rng.randrange(self.n)
        path = []
        for _ in range(length):
            path.append(current)
            # Occasional teleport keeps the walk ergodic over all keys,
            # like a reader starting a fresh browsing session.
            if rng.random() < 0.05:
                current = rng.randrange(self.n)
            else:
                current = rng.choices(
                    self.neighbours[current], weights=self.weights[current]
                )[0]
        return path

    def transition_matrix(self):
        """Dense row-stochastic transition matrix (tests, attack ground truth)."""
        import numpy as np

        teleport = 0.05 / self.n
        matrix = np.full((self.n, self.n), teleport)
        for node, (nbrs, weights) in enumerate(zip(self.neighbours, self.weights)):
            for nbr, weight in zip(nbrs, weights):
                matrix[node, nbr] += 0.95 * weight
        return matrix


class CorrelatedWorkload:
    """Read-only trace generator over a clickstream model.

    ``correlated_trace`` yields the Markov walk; ``independent_trace``
    yields the same multiset of requests in shuffled order (the paper's
    control).
    """

    def __init__(self, model: ClickstreamModel, seed: int | None = None) -> None:
        self.model = model
        master = seeded_rng(seed)
        self._walk_seed = master.randrange(2**63)
        self._shuffle_rng = random.Random(master.randrange(2**63))

    def correlated_trace(self, length: int) -> list[TraceRequest]:
        walk = self.model.walk(length, seed=self._walk_seed)
        return [TraceRequest(Operation.READ, key_name(index)) for index in walk]

    def independent_trace(self, length: int) -> list[TraceRequest]:
        """Shuffled copy of the correlated trace: same frequencies, no order."""
        trace = self.correlated_trace(length)
        self._shuffle_rng.shuffle(trace)
        return trace
