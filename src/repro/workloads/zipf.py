"""Zipfian and uniform key samplers.

YCSB's request distribution is the scrambled Zipfian: ranks follow
Zipf(theta) and are then permuted over the key space with an FNV-style
hash so that popular keys are spread across the id range rather than
clustered at the low ids.  We reproduce both pieces.

The Zipf sampler uses the standard inverse-CDF construction over a
precomputed cumulative table — exact (not the Gray et al. approximation),
which is affordable at the key-space sizes this reproduction runs and
makes distribution tests sharp.
"""

from __future__ import annotations

import bisect
import random

import numpy as np

from repro.seeding import seeded_rng

__all__ = ["UniformSampler", "ZipfSampler"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a_64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's scramble)."""
    digest = _FNV_OFFSET
    for _ in range(8):
        digest ^= value & 0xFF
        digest = (digest * _FNV_PRIME) & _MASK64
        value >>= 8
    return digest


class ZipfSampler:
    """Samples key indices in ``[0, n)`` from a (scrambled) Zipf law.

    Parameters
    ----------
    n:
        Key-space size.
    theta:
        Skew parameter; the paper uses 0.99.  ``theta=0`` degenerates to
        uniform.
    scrambled:
        Apply YCSB's FNV scramble so popularity is not aligned with index
        order.
    seed:
        RNG seed for reproducible traces.
    """

    __slots__ = ("n", "theta", "_cdf", "_rng", "_scrambled", "_perm")

    def __init__(self, n: int, theta: float = 0.99, scrambled: bool = True,
                 seed: int | None = None) -> None:
        if n <= 0:
            raise ValueError("key-space size must be positive")
        if theta < 0:
            raise ValueError("zipf theta must be non-negative")
        self.n = n
        self.theta = theta
        weights = np.arange(1, n + 1, dtype=np.float64) ** (-theta)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf
        self._rng = seeded_rng(seed)
        self._scrambled = scrambled
        if scrambled:
            # Rank r maps to a stable pseudo-random index.  A true
            # permutation (not just FNV mod n) avoids popularity collisions.
            shuffler = random.Random(_fnv1a_64(n) ^ 0x9E3779B97F4A7C15)
            perm = list(range(n))
            shuffler.shuffle(perm)
            self._perm = perm
        else:
            self._perm = None

    def sample(self) -> int:
        """Draw one key index."""
        u = self._rng.random()
        rank = bisect.bisect_left(self._cdf, u)
        if rank >= self.n:  # guard against u == 1.0 edge
            rank = self.n - 1
        if self._perm is not None:
            return self._perm[rank]
        return rank

    def probability(self, rank: int) -> float:
        """Probability mass of the key of given popularity ``rank`` (0-based)."""
        if not 0 <= rank < self.n:
            raise IndexError(rank)
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lower)

    def probabilities_by_index(self) -> np.ndarray:
        """Probability mass per key *index* (after scrambling)."""
        by_rank = np.diff(self._cdf, prepend=0.0)
        if self._perm is None:
            return by_rank
        out = np.empty(self.n)
        for rank, index in enumerate(self._perm):
            out[index] = by_rank[rank]
        return out


class HotspotSampler:
    """YCSB's hotspot distribution: a fraction of operations hits a small
    hot subset of the key space uniformly; the rest spread over the cold
    remainder.

    Parameters
    ----------
    n:
        Key-space size.
    hot_fraction:
        Fraction of the key space that is hot (YCSB default 0.2).
    hot_opn_fraction:
        Fraction of operations that target the hot set (default 0.8).
    """

    __slots__ = ("n", "hot_keys", "hot_opn_fraction", "_rng")

    def __init__(self, n: int, hot_fraction: float = 0.2,
                 hot_opn_fraction: float = 0.8,
                 seed: int | None = None) -> None:
        if n <= 0:
            raise ValueError("key-space size must be positive")
        if not 0 < hot_fraction <= 1 or not 0 <= hot_opn_fraction <= 1:
            raise ValueError("hotspot fractions out of range")
        self.n = n
        self.hot_keys = max(1, int(n * hot_fraction))
        self.hot_opn_fraction = hot_opn_fraction
        self._rng = seeded_rng(seed)

    def sample(self) -> int:
        if self._rng.random() < self.hot_opn_fraction:
            return self._rng.randrange(self.hot_keys)
        if self.hot_keys >= self.n:
            return self._rng.randrange(self.n)
        return self._rng.randrange(self.hot_keys, self.n)

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.n:
            raise IndexError(rank)
        if rank < self.hot_keys:
            return self.hot_opn_fraction / self.hot_keys
        cold = self.n - self.hot_keys
        return (1 - self.hot_opn_fraction) / cold if cold else 0.0


class UniformSampler:
    """Uniform key-index sampler (Table 2's 'Uniform' input distribution)."""

    __slots__ = ("n", "_rng")

    def __init__(self, n: int, seed: int | None = None) -> None:
        if n <= 0:
            raise ValueError("key-space size must be positive")
        self.n = n
        self._rng = seeded_rng(seed)

    def sample(self) -> int:
        return self._rng.randrange(self.n)

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.n:
            raise IndexError(rank)
        return 1.0 / self.n
