"""Security audit report: everything an operator checks, in one document.

:func:`security_audit` runs a deployment's recorded trace through the
whole analysis toolkit — id-lifecycle invariants, α/β bounds vs theory,
leakage statistics, the α histogram — and renders a markdown report an
operator can archive next to their parameter choices (§8.4's
operational workflow).  The CLI exposes it as ``repro audit``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.histograms import alpha_histogram, render_histogram
from repro.analysis.leakage import leakage_summary
from repro.analysis.uniformity import full_report, verify_storage_invariants
from repro.core.datastore import WaffleDatastore
from repro.errors import ConfigurationError, ProtocolError

__all__ = ["AuditResult", "security_audit"]


@dataclass(frozen=True, slots=True)
class AuditResult:
    """Outcome of one audit: verdicts plus the rendered report."""

    invariants_ok: bool
    alpha_ok: bool
    beta_ok: bool
    markdown: str

    @property
    def passed(self) -> bool:
        return self.invariants_ok and self.alpha_ok and self.beta_ok


def security_audit(datastore: WaffleDatastore,
                   steady_state_from_round: int = 1) -> AuditResult:
    """Audit a recorded deployment; requires ``record=True`` (and ideally
    ``log_ids=True`` for the β section)."""
    if datastore.recorder is None:
        raise ConfigurationError(
            "auditing needs the adversary recorder: construct the "
            "datastore with record=True"
        )
    config = datastore.config
    records = datastore.recorder.records

    invariants_ok = True
    invariant_note = "every storage id written once, read once, deleted"
    try:
        verify_storage_invariants(records)
    except ProtocolError as error:
        invariants_ok = False
        invariant_note = f"VIOLATION: {error}"

    id_log = datastore.proxy.id_log
    report = full_report(records, id_log)
    alpha_bound = config.alpha_bound_effective()
    beta_bound = config.beta_bound()
    alpha_ok = report.max_alpha is None or report.max_alpha <= alpha_bound
    beta_ok = (not report.betas) or report.min_beta >= beta_bound
    leakage = leakage_summary(records, steady_state_from_round)

    check = "PASS" if (invariants_ok and alpha_ok and beta_ok) else "FAIL"
    lines = [
        "# Waffle security audit",
        "",
        f"**Verdict: {check}**",
        "",
        "## Configuration",
        "",
        f"- N={config.n}, B={config.b}, R={config.r}, "
        f"f_D={config.f_d}, D={config.d}, C={config.c}",
        f"- dummy policy: {config.dummy_policy}; "
        f"fake-real policy: {config.fake_real_policy}",
        f"- theoretical α (Thm 7.1): {config.alpha_bound()}; "
        f"implementation α bound: {alpha_bound}; "
        f"β (Thm 7.2): {beta_bound}",
        f"- bandwidth overhead: {config.bandwidth_overhead():.2f}x",
        "",
        "## Storage-id lifecycle",
        "",
        f"- {invariant_note}",
        f"- accesses observed: {len(records)} over "
        f"{datastore.proxy.totals.rounds} rounds",
        "",
        "## α,β-uniformity (Definition 1)",
        "",
        f"- observed max α: {report.max_alpha} "
        f"(bound {alpha_bound}) — {'OK' if alpha_ok else 'VIOLATED'}",
        f"- observed min β: {report.min_beta} "
        f"(bound {beta_bound}) — {'OK' if beta_ok else 'VIOLATED'}"
        + ("" if id_log is not None else
           "  *(enable log_ids=True to measure β)*"),
        f"- ids written but not yet read: {report.unread_ids}",
        "",
        "## Leakage statistics (steady state)",
        "",
        f"- normalized access entropy: {leakage.normalized_entropy:.4f} "
        "(1.0 = perfectly flat)",
        f"- KL divergence from uniform: "
        f"{leakage.kl_divergence_bits:.6f} bits",
        f"- χ² uniformity p-value: {leakage.chi_square_p:.4f}",
        f"- per-round load CV (reads/writes): "
        f"{leakage.read_cv:.4f} / {leakage.write_cv:.4f}",
        "",
        "## α histogram",
        "",
        "```",
        render_histogram(alpha_histogram(report.alphas), max_rows=12),
        "```",
    ]
    return AuditResult(
        invariants_ok=invariants_ok,
        alpha_ok=alpha_ok,
        beta_ok=beta_ok,
        markdown="\n".join(lines),
    )
