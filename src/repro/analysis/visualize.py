"""ASCII figure rendering: the paper's plots, in a terminal.

The reporting module renders tables and single bar series; this module
renders the two plot shapes the paper's figures use — multi-series line
charts (Figures 2c/3a-3d) and scatter plots (Figure 6) — as fixed-width
ASCII, so the CLI and the examples can show a *figure*, not just rows.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["line_chart", "scatter_plot"]


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, round(position * (cells - 1))))


def line_chart(series: dict[str, list[tuple[float, float]]],
               width: int = 60, height: int = 16,
               title: str | None = None,
               x_label: str = "x", y_label: str = "y") -> str:
    """Render one or more (x, y) series on a shared canvas.

    Each series gets a marker (``*``, ``o``, ``+``, ``x``...); points are
    plotted on a ``width`` x ``height`` grid with min/max axis labels.
    """
    if not series or not any(series.values()):
        raise ConfigurationError("need at least one non-empty series")
    markers = "*o+x#@%&"
    points = [p for pts in series.values() for p in pts]
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:,.4g}"
    y_lo_label = f"{y_lo:,.4g}"
    gutter = max(len(y_hi_label), len(y_lo_label))
    for row_index, row in enumerate(grid):
        label = ""
        if row_index == 0:
            label = y_hi_label
        elif row_index == height - 1:
            label = y_lo_label
        lines.append(f"{label:>{gutter}} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    x_axis = f"{x_lo:,.4g}" + " " * max(
        1, width - len(f"{x_lo:,.4g}") - len(f"{x_hi:,.4g}")
    ) + f"{x_hi:,.4g}"
    lines.append(" " * gutter + "  " + x_axis)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"[{y_label} vs {x_label}]  {legend}")
    return "\n".join(lines)


def scatter_plot(points: list[tuple[float, float]], width: int = 60,
                 height: int = 16, title: str | None = None,
                 x_label: str = "x", y_label: str = "y") -> str:
    """Render one scatter series (Figure 6's security-vs-throughput)."""
    return line_chart({y_label: points}, width=width, height=height,
                      title=title, x_label=x_label, y_label=y_label)
