"""Inference attacks against recorded access traces.

Two attacks from the paper's threat narrative:

* **Frequency analysis** (§2): rank the observed per-id access counts and
  match them against an auxiliary plaintext frequency estimate.  Breaks
  deterministically-encrypted stores with static ids; defeated by
  Pancake's smoothing (all frequencies equal) and trivially by Waffle
  (ids never repeat).
* **Co-occurrence attack** (§8.3.2, an IHOP-style simplification): for
  correlated workloads, adjacent requests touch correlated keys, so with
  *static* ids the adversary can estimate a ciphertext co-occurrence
  matrix and align it with an auxiliary plaintext transition model.  We
  implement the alignment as frequency-seeded hill climbing over
  assignments (IHOP uses quadratic optimization; hill climbing on the
  same objective reproduces the qualitative result at reproduction
  scale).  Against Pancake the attack recovers a substantial fraction of
  keys; against Waffle every id occurs at most twice (one write, one
  read) so the co-occurrence signal simply does not exist.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.seeding import seeded_rng
from repro.storage.recording import AccessRecord

__all__ = [
    "AttackResult",
    "cooccurrence_attack",
    "frequency_analysis_attack",
    "observed_read_sequence",
]


@dataclass(frozen=True, slots=True)
class AttackResult:
    """Outcome of an attack: guessed mapping and accuracy vs ground truth."""

    guesses: dict[str, str]  # storage id -> guessed plaintext key
    accuracy: float
    recovered: int
    targets: int


def observed_read_sequence(records: list[AccessRecord]) -> list[str]:
    """The adversary's view reduced to the sequence of read storage ids."""
    return [record.storage_id for record in records if record.op == "read"]


# ----------------------------------------------------------------------
# frequency analysis
# ----------------------------------------------------------------------
def frequency_analysis_attack(records: list[AccessRecord],
                              auxiliary: dict[str, float],
                              truth: dict[str, str]) -> AttackResult:
    """Classic frequency matching: i-th most-accessed id ↦ i-th most
    popular key of the auxiliary distribution.

    Parameters
    ----------
    records:
        The adversary's trace.
    auxiliary:
        The attacker's prior: plaintext key → assumed access probability.
    truth:
        Ground-truth id → key mapping for scoring (ids absent from
        ``truth`` — dummies — are excluded from accuracy).
    """
    counts = Counter(observed_read_sequence(records))
    ranked_ids = [sid for sid, _ in counts.most_common()]
    ranked_keys = [key for key, _ in
                   sorted(auxiliary.items(), key=lambda kv: -kv[1])]
    guesses = {
        sid: key for sid, key in zip(ranked_ids, ranked_keys)
    }
    return _score(guesses, truth)


def _score(guesses: dict[str, str], truth: dict[str, str]) -> AttackResult:
    targets = [sid for sid in guesses if sid in truth]
    recovered = sum(1 for sid in targets if guesses[sid] == truth[sid])
    accuracy = recovered / len(targets) if targets else 0.0
    return AttackResult(guesses=guesses, accuracy=accuracy,
                        recovered=recovered, targets=len(targets))


# ----------------------------------------------------------------------
# co-occurrence (correlated-query) attack
# ----------------------------------------------------------------------
def _cooccurrence_matrix(sequence: list[str], ids: list[str],
                         window: int) -> np.ndarray:
    index = {sid: i for i, sid in enumerate(ids)}
    matrix = np.zeros((len(ids), len(ids)))
    for pos, sid in enumerate(sequence):
        i = index.get(sid)
        if i is None:
            continue
        for other in sequence[pos + 1: pos + 1 + window]:
            j = index.get(other)
            if j is not None and j != i:
                matrix[i, j] += 1.0
                matrix[j, i] += 1.0
    total = matrix.sum()
    if total > 0:
        matrix /= total
    return matrix


def cooccurrence_attack(records: list[AccessRecord],
                        transition_model: np.ndarray,
                        keys: list[str],
                        truth: dict[str, str],
                        window: int = 4,
                        iterations: int = 4,
                        seed: int | None = None,
                        min_occurrences: int = 2,
                        known_fraction: float = 0.5,
                        max_ids: int = 2000) -> AttackResult:
    """Known-query co-occurrence attack (the IHOP refinement step).

    Threat model: the adversary knows the plaintext key behind a fraction
    of the observed ciphertext ids (IHOP and the broader leakage-abuse
    literature evaluate exactly this "known queries" setting) plus the
    key-to-key transition model.  Each remaining id is matched to the key
    whose model co-occurrence profile best aligns with the id's observed
    co-occurrence against the already-assigned ids; a few self-training
    iterations propagate confident assignments.

    Accuracy is scored **only over the ids the adversary did not already
    know**.

    Parameters
    ----------
    transition_model:
        Auxiliary knowledge: row-stochastic key-to-key transition matrix
        (e.g. from :meth:`ClickstreamModel.transition_matrix`).
    keys:
        Key names index-aligned with ``transition_model``.
    truth:
        Ground-truth id → key, used both to seed the known subset and to
        score the result.
    min_occurrences:
        Ids seen fewer times than this are skipped — they carry no
        co-occurrence signal.  Against Waffle this filters *every* id
        (each id is read at most once), which is precisely its defence.
    """
    sequence = observed_read_sequence(records)
    counts = Counter(sequence)
    ids = [sid for sid, c in counts.most_common(max_ids)
           if c >= min_occurrences]
    if not ids:
        return AttackResult(guesses={}, accuracy=0.0, recovered=0, targets=0)

    observed = _cooccurrence_matrix(sequence, ids, window)

    # Plaintext model: symmetrized stationary-weighted co-occurrence.
    stationary = _stationary_distribution(transition_model)
    model = (stationary[:, None] * transition_model)
    model = model + model.T
    model /= model.sum()

    key_index = {key: i for i, key in enumerate(keys)}
    rng = seeded_rng(seed)
    in_truth = [i for i, sid in enumerate(ids) if sid in truth]
    known_count = max(1, int(known_fraction * len(in_truth))) if in_truth else 0
    known = set(rng.sample(in_truth, known_count)) if in_truth else set()
    assignment: dict[int, int] = {
        i: key_index[truth[ids[i]]] for i in known
    }

    n_keys = len(keys)
    for _ in range(iterations):
        for i in range(len(ids)):
            if i in known:
                continue
            profile = np.zeros(n_keys)
            for j, kj in assignment.items():
                if j != i:
                    profile[kj] += observed[i, j]
            norm = np.linalg.norm(profile)
            if norm == 0:
                continue
            scores = model @ (profile / norm)
            assignment[i] = int(np.argmax(scores))

    guesses = {
        ids[i]: keys[k] for i, k in assignment.items() if i not in known
    }
    return _score(guesses, truth)


def _stationary_distribution(transition: np.ndarray) -> np.ndarray:
    """Stationary distribution of a row-stochastic matrix (power method)."""
    n = transition.shape[0]
    vec = np.full(n, 1.0 / n)
    for _ in range(200):
        nxt = vec @ transition
        if np.abs(nxt - vec).sum() < 1e-12:
            vec = nxt
            break
        vec = nxt
    return vec / vec.sum()
