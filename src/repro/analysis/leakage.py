"""Quantifying adversary-visible leakage beyond α/β.

The α,β definition bounds *when* ids recur; these metrics quantify *how
uniform* the observed access behaviour is, in information-theoretic and
statistical terms:

* :func:`access_count_entropy` — Shannon entropy of per-id read counts
  (Waffle's counts are all 1, the maximum-entropy profile; Pancake's
  are smoothed; a deterministic store mirrors the query skew);
* :func:`frequency_kl_divergence` — KL divergence between the observed
  per-id frequency profile and the uniform profile;
* :func:`chi_square_uniformity` — classical χ² goodness-of-fit of
  per-id counts against uniform (SciPy), the test an auditing adversary
  would run first;
* :func:`round_load_profile` — accesses per batch round (for Waffle a
  constant ``B`` reads + ``B`` writes; variance here is leakage).

These back the library's security regression tests and the comparison
tables in the examples: Waffle should look maximally boring under every
one of them, regardless of the input workload.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.storage.recording import AccessRecord

__all__ = [
    "LeakageSummary",
    "access_count_entropy",
    "chi_square_uniformity",
    "frequency_kl_divergence",
    "leakage_summary",
    "round_load_profile",
]


def _read_counts(records: list[AccessRecord]) -> np.ndarray:
    counts = Counter(r.storage_id for r in records if r.op == "read")
    return np.array(list(counts.values()), dtype=np.float64)


def access_count_entropy(records: list[AccessRecord]) -> float:
    """Shannon entropy (bits) of the per-id read-frequency distribution,
    normalized by the maximum achievable for that many ids (0..1).

    1.0 means every observed id was read equally often — Waffle achieves
    exactly 1.0 because every id is read exactly once.
    """
    counts = _read_counts(records)
    if counts.size <= 1:
        return 1.0
    p = counts / counts.sum()
    entropy = float(-(p * np.log2(p)).sum())
    return entropy / math.log2(counts.size)


def frequency_kl_divergence(records: list[AccessRecord]) -> float:
    """KL(observed per-id frequency || uniform), in bits.

    0 for Waffle (all counts equal); grows with the skew an adversary
    can observe.
    """
    counts = _read_counts(records)
    if counts.size <= 1:
        return 0.0
    p = counts / counts.sum()
    q = 1.0 / counts.size
    return float((p * np.log2(p / q)).sum())


def chi_square_uniformity(records: list[AccessRecord]) -> tuple[float, float]:
    """χ² statistic and p-value of per-id read counts vs uniform.

    A high p-value (fail to reject uniformity) is what an oblivious
    store should produce.  Ids never read are not observable as
    "channels" to the adversary and are excluded, as in frequency
    analysis practice.
    """
    from scipy import stats

    counts = _read_counts(records)
    if counts.size <= 1:
        return 0.0, 1.0
    statistic, p_value = stats.chisquare(counts)
    return float(statistic), float(p_value)


def round_load_profile(records: list[AccessRecord]) -> dict[str, float]:
    """Mean and coefficient of variation of per-round read and write
    counts.  For Waffle both CVs are 0 (every round moves exactly B)."""
    reads: Counter = Counter()
    writes: Counter = Counter()
    for record in records:
        if record.op == "read":
            reads[record.round] += 1
        elif record.op == "write":
            writes[record.round] += 1

    def profile(counter: Counter) -> tuple[float, float]:
        if not counter:
            return 0.0, 0.0
        values = np.array(list(counter.values()), dtype=np.float64)
        mean = float(values.mean())
        cv = float(values.std() / mean) if mean else 0.0
        return mean, cv

    read_mean, read_cv = profile(reads)
    write_mean, write_cv = profile(writes)
    return {
        "read_mean": read_mean,
        "read_cv": read_cv,
        "write_mean": write_mean,
        "write_cv": write_cv,
    }


@dataclass(frozen=True, slots=True)
class LeakageSummary:
    """All leakage metrics of one trace, side by side."""

    normalized_entropy: float
    kl_divergence_bits: float
    chi_square_p: float
    read_cv: float
    write_cv: float


def leakage_summary(records: list[AccessRecord],
                    steady_state_from_round: int = 0) -> LeakageSummary:
    """Compute every metric, optionally skipping warm-up rounds."""
    window = [r for r in records if r.round >= steady_state_from_round]
    _, p_value = chi_square_uniformity(window)
    loads = round_load_profile(window)
    return LeakageSummary(
        normalized_entropy=access_count_entropy(window),
        kl_divergence_bits=frequency_kl_divergence(window),
        chi_square_p=p_value,
        read_cv=loads["read_cv"],
        write_cv=loads["write_cv"],
    )
