"""Small statistics toolkit: percentiles, bootstrap CIs, KS goodness.

The serving benchmark reports tail latencies, and a p99 from a few
hundred samples is itself a noisy estimate — reporting it without an
interval invites over-reading one lucky run.  This module provides the
three pieces the benchmark and the open-loop workload tests share:

* :func:`percentile` — linear-interpolation percentile (the numpy
  default), dependency-free so the helpers work on plain lists;
* :func:`bootstrap_ci` — seeded percentile-method bootstrap confidence
  interval for any statistic of an i.i.d.-ish sample;
* :func:`ks_statistic` / :func:`ks_exponential` — the Kolmogorov–
  Smirnov distance against an arbitrary CDF, specialised for the
  exponential inter-arrival check on :class:`PoissonArrivals`.

Everything is deterministic given its seed; the known-answer fixtures
in ``tests/test_analysis_stats.py`` pin exact outputs.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.seeding import seeded_rng

__all__ = [
    "bootstrap_ci",
    "ks_exponential",
    "ks_statistic",
    "percentile",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) with linear interpolation.

    Matches ``numpy.percentile``'s default ("linear") method so numbers
    are comparable with any externally produced report.
    """
    if not samples:
        raise ConfigurationError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError("percentile q must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def bootstrap_ci(samples: Sequence[float],
                 statistic: Callable[[Sequence[float]], float],
                 *, n_resamples: int = 200, confidence: float = 0.95,
                 seed: int | None = None) -> tuple[float, float, float]:
    """Percentile-method bootstrap interval for ``statistic(samples)``.

    Resamples with replacement ``n_resamples`` times using a seeded RNG
    and returns ``(point, lo, hi)`` where ``point`` is the statistic of
    the original sample and ``[lo, hi]`` covers the central
    ``confidence`` mass of the bootstrap distribution.

    The percentile method is the bluntest bootstrap (no bias
    correction), which is fine here: the benchmark needs honest error
    bars on latency quantiles, not publishable inference.
    """
    if not samples:
        raise ConfigurationError("bootstrap of an empty sample")
    if n_resamples < 1:
        raise ConfigurationError("n_resamples must be >= 1")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    data = list(samples)
    point = statistic(data)
    rng = seeded_rng(seed)
    n = len(data)
    replicates = sorted(
        statistic([data[rng.randrange(n)] for _ in range(n)])
        for _ in range(n_resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo = percentile(replicates, 100.0 * alpha)
    hi = percentile(replicates, 100.0 * (1.0 - alpha))
    return point, lo, hi


def ks_statistic(samples: Sequence[float],
                 cdf: Callable[[float], float]) -> float:
    """One-sample Kolmogorov–Smirnov distance ``sup |F_n(x) - F(x)|``.

    The supremum over a step empirical CDF is attained at a sample
    point, approaching from below or above, so both one-sided gaps are
    evaluated at every order statistic.
    """
    if not samples:
        raise ConfigurationError("KS statistic of an empty sample")
    ordered = sorted(samples)
    n = len(ordered)
    distance = 0.0
    for i, x in enumerate(ordered):
        theoretical = cdf(x)
        distance = max(distance,
                       abs((i + 1) / n - theoretical),
                       abs(theoretical - i / n))
    return distance


def ks_exponential(samples: Sequence[float],
                   rate: float) -> tuple[float, float]:
    """KS distance of ``samples`` against Exponential(``rate``).

    Returns ``(statistic, critical_value)`` where the critical value is
    the large-sample 5% threshold ``1.358 / sqrt(n)`` — the Poisson
    inter-arrival test asserts ``statistic < critical_value``.
    """
    if rate <= 0:
        raise ConfigurationError("exponential rate must be positive")
    statistic = ks_statistic(
        samples, lambda x: 1.0 - math.exp(-rate * x) if x > 0 else 0.0)
    return statistic, 1.358 / math.sqrt(len(samples))
