"""Measuring α,β-uniformity (Definition 1) from a recorded trace.

Units
-----
The paper states the bounds in *batched* server accesses (§5.1); Waffle's
proxy performs one read batch and one write batch per round, so we measure
in **rounds**:

* ``α_obs(id) = read_round(id) − write_round(id) − 1`` — rounds strictly
  between an id's write and its read.  A write in round *i* read in round
  *i+1* (the soonest possible: the write phase follows the read phase)
  scores 0, matching the paper's "the lower bound for α is 0 because an
  object written in one round can be accessed in the next round".
  Theorem 7.1 then guarantees ``max α_obs ≤ α``.
* ``β_obs(key) = write_round − read_round`` for consecutive read→write of
  the *same plaintext key* (different storage ids — the adversary cannot
  see β, §8.3.1; measuring it needs the proxy's ``id_log``).
  Theorem 7.2 guarantees ``min β_obs ≥ β``.

α is adversary-observable because between an id's write and read the id
itself does not change; β is only measurable with plaintext ground truth,
exactly as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.storage.recording import AccessRecord

__all__ = [
    "UniformityReport",
    "measure_alpha",
    "measure_beta",
    "verify_storage_invariants",
]


@dataclass
class UniformityReport:
    """Observed α/β statistics of one recorded run."""

    alphas: list[int] = field(default_factory=list)
    betas: list[int] = field(default_factory=list)
    #: ids written but never read by the end of the run (the paper's low
    #: security configuration leaves many of these, §8.3.1).
    unread_ids: int = 0

    @property
    def max_alpha(self) -> int | None:
        return max(self.alphas) if self.alphas else None

    @property
    def min_beta(self) -> int | None:
        return min(self.betas) if self.betas else None

    def satisfies(self, alpha_bound: int, beta_bound: int) -> bool:
        """Check Theorem 7.3: all observations within the bounds."""
        alpha_ok = self.max_alpha is None or self.max_alpha <= alpha_bound
        beta_ok = self.min_beta is None or self.min_beta >= beta_bound
        return alpha_ok and beta_ok


def infer_rounds(records: list[AccessRecord]) -> list[AccessRecord]:
    """Re-annotate a trace with batch rounds inferred from its structure.

    A remote (server-side) observer has no round markers, but Waffle's
    round structure is plainly visible: each round is a burst of reads,
    then deletes, then writes.  A new round starts at each read that
    follows a non-read — exactly the inference a passive persistent
    adversary performs.  Returns a new list with ``round`` rewritten.
    """
    out: list[AccessRecord] = []
    round_index = 0
    previous: str | None = None
    for record in records:
        if record.op == "read" and previous not in (None, "read"):
            round_index += 1
        out.append(AccessRecord(record.op, record.storage_id,
                                round_index, record.seq))
        previous = record.op
    return out


def verify_storage_invariants(records: list[AccessRecord]) -> None:
    """Assert the write-once/read-once/delete-after-read id lifecycle.

    Every storage id Waffle's server ever sees must be written exactly
    once, then read at most once, then (optionally) deleted — the
    Challenge 4 mechanism.  Raises :class:`ProtocolError` on violation.
    """
    state: dict[str, str] = {}
    for record in records:
        current = state.get(record.storage_id)
        if record.op == "write":
            if current is not None:
                raise ProtocolError(
                    f"id {record.storage_id} written twice (seq {record.seq})"
                )
            state[record.storage_id] = "written"
        elif record.op == "read":
            if current != "written":
                raise ProtocolError(
                    f"id {record.storage_id} read in state {current!r} "
                    f"(seq {record.seq})"
                )
            state[record.storage_id] = "read"
        elif record.op == "delete":
            if current != "read":
                raise ProtocolError(
                    f"id {record.storage_id} deleted in state {current!r} "
                    f"(seq {record.seq})"
                )
            state[record.storage_id] = "deleted"
        else:  # pragma: no cover - recorder only emits these three
            raise ProtocolError(f"unknown op {record.op!r}")


def measure_alpha(records: list[AccessRecord]) -> UniformityReport:
    """Adversary-side α measurement over every storage id in the trace."""
    report = UniformityReport()
    write_round: dict[str, int] = {}
    for record in records:
        if record.op == "write":
            write_round[record.storage_id] = record.round
        elif record.op == "read":
            if record.storage_id in write_round:
                born = write_round.pop(record.storage_id)
                report.alphas.append(record.round - born - 1)
    report.unread_ids = len(write_round)
    return report


def measure_beta(records: list[AccessRecord], id_log: dict[str, str],
                 dummy_marker: str = "\x00") -> list[int]:
    """System-side β measurement: read→next-write gaps per plaintext key.

    ``id_log`` maps storage ids to plaintext keys (``WaffleProxy.id_log``).
    Dummy objects are excluded — "to bound writes after reads, we do not
    need to care about dummy keys" (Theorem 7.2 proof).
    """
    betas: list[int] = []
    last_read_round: dict[str, int] = {}
    for record in records:
        key = id_log.get(record.storage_id)
        if key is None:
            raise ProtocolError(f"untracked storage id {record.storage_id}")
        if key.startswith(dummy_marker):
            continue
        if record.op == "read":
            last_read_round[key] = record.round
        elif record.op == "write" and key in last_read_round:
            betas.append(record.round - last_read_round.pop(key))
    return betas


def full_report(records: list[AccessRecord], id_log: dict[str, str] | None = None,
                ) -> UniformityReport:
    """α measurement plus β when id provenance is available."""
    report = measure_alpha(records)
    if id_log is not None:
        report.betas = measure_beta(records, id_log)
    return report
