"""Online α monitoring for deployed systems (§8.4).

"Even after deploying, an application can monitor the α values
observable to an adversary and can fine-tune parameters such as B, R,
f_D, or C."  This module is that monitor: an online consumer of server
accesses that tracks, per sliding window of rounds,

* the maximum observed α,
* the number of ids written but not yet read ("aging" ids, the low-
  security configuration's failure mode), and
* a breach flag against a configured α budget,

in O(1) memory per outstanding id — suitable to run inside the proxy.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AlphaMonitor", "WindowReport", "attach_monitor"]


@dataclass(frozen=True, slots=True)
class WindowReport:
    """Summary of one completed monitoring window."""

    window_start_round: int
    window_end_round: int
    max_alpha: int | None
    samples: int
    outstanding_ids: int
    oldest_outstanding_age: int
    budget_breached: bool


class AlphaMonitor:
    """Streams server accesses; reports per-window α statistics.

    Parameters
    ----------
    alpha_budget:
        The α value the operator wants never exceeded (typically the
        theoretical bound, or a tighter internal target).
    window_rounds:
        Rounds per reporting window.
    """

    def __init__(self, alpha_budget: int, window_rounds: int = 100) -> None:
        if alpha_budget < 0 or window_rounds < 1:
            raise ConfigurationError("invalid monitor parameters")
        self.alpha_budget = alpha_budget
        self.window_rounds = window_rounds
        self._write_round: dict[str, int] = {}
        self._current_round = 0
        self._window_alphas: Counter = Counter()
        self._window_start = 0
        self._reports: deque[WindowReport] = deque(maxlen=64)
        self.total_breaches = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe_write(self, storage_id: str, round_index: int) -> None:
        self._advance(round_index)
        self._write_round[storage_id] = round_index

    def observe_read(self, storage_id: str, round_index: int) -> int | None:
        """Feed a read; returns the id's α if its write was observed."""
        self._advance(round_index)
        born = self._write_round.pop(storage_id, None)
        if born is None:
            return None
        alpha = round_index - born - 1
        self._window_alphas[alpha] += 1
        return alpha

    def _advance(self, round_index: int) -> None:
        if round_index < self._current_round:
            raise ConfigurationError("rounds must be monotone")
        while round_index >= self._window_start + self.window_rounds:
            self._close_window(self._window_start + self.window_rounds - 1)
        self._current_round = round_index

    def _close_window(self, end_round: int) -> None:
        max_alpha = max(self._window_alphas) if self._window_alphas else None
        oldest = 0
        if self._write_round:
            oldest = end_round - min(self._write_round.values())
        breached = (max_alpha is not None and max_alpha > self.alpha_budget) \
            or oldest > self.alpha_budget
        if breached:
            self.total_breaches += 1
        self._reports.append(WindowReport(
            window_start_round=self._window_start,
            window_end_round=end_round,
            max_alpha=max_alpha,
            samples=sum(self._window_alphas.values()),
            outstanding_ids=len(self._write_round),
            oldest_outstanding_age=oldest,
            budget_breached=breached,
        ))
        self._window_alphas = Counter()
        self._window_start = end_round + 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def reports(self) -> list[WindowReport]:
        return list(self._reports)

    @property
    def outstanding_ids(self) -> int:
        return len(self._write_round)

    def feed_records(self, records) -> None:
        """Convenience: replay a recorded trace through the monitor."""
        for record in records:
            if record.op == "write":
                self.observe_write(record.storage_id, record.round)
            elif record.op == "read":
                self.observe_read(record.storage_id, record.round)


def attach_monitor(tracer, monitor: AlphaMonitor):
    """Feed ``monitor`` live from a tracer's ``storage.access`` events.

    Subscribes to the tracer (``repro.obs.Tracer``) and routes each
    ``storage.access`` event — emitted by
    :class:`repro.storage.recording.RecordingStore` — into the monitor,
    realizing the paper's "monitor α after deploying" (§8.4) without a
    second pass over the recorded trace.  Returns the subscriber callback
    so callers can detach it later (``tracer.unsubscribe``).
    """

    def _on_record(record: dict) -> None:
        if record.get("kind") != "event" or record.get("name") != "storage.access":
            return
        attrs = record.get("attrs", {})
        op = attrs.get("op")
        if op == "write":
            monitor.observe_write(attrs["id"], attrs["round"])
        elif op == "read":
            monitor.observe_read(attrs["id"], attrs["round"])

    tracer.subscribe(_on_record)
    return _on_record
