"""Timing-leakage observatory: what the *schedule* of rounds reveals.

Waffle's access-pattern guarantees (Theorems 7.1/7.2) cover *which*
storage ids the server sees — every round is B reads, B+D deletes and B
writes over α,β-uniform ids regardless of the workload.  They say
nothing about *when* rounds happen.  A proxy that fires a round the
moment B real requests have accumulated ("on-fill" scheduling) turns the
inter-round gap into a side channel: gaps shrink as offered load rises,
and a flash crowd on a hot key shows up as a sharp change-point in the
gap series — all without the adversary reading a single id.

This module measures that channel:

* :class:`TimingObserver` records only what a server-side adversary can
  see — the monotonic release instant of each round — either live (via
  :func:`attach_timing_observer` on the tracer's ``storage.access``
  stream) or from a simulated schedule;
* :func:`load_inference_attack` and :func:`detect_onset` are the
  adversary: recover the offered-load curve from gap widths, and locate
  a hot-key onset as the strongest mean-shift in the gap series;
* :func:`timing_attack_benchmark` runs both attacks against an on-fill
  schedule and a fixed-interval (shaped) schedule of the *same* workload
  on a :class:`~repro.sim.clock.SimClock`, scoring each as a leakage
  number in ``[0, 1]``.  Fixed-interval release decouples the schedule
  from the workload, so its score must drop — the property
  :func:`repro.testing.oracle.check_timing_channel` pins and the chaos
  suite sweeps over seeds.

Threat-model caveat (DESIGN.md §12): the observer deliberately records
*nothing* the server cannot see.  Timestamps come from
:func:`repro.obs.clock` (the sanctioned monotonic source — oblint OBL201
keeps raw ``time.monotonic`` out of protocol code), and only the first
access of each round is stamped; per-phase proxy-internal timings never
reach this module.
"""

from __future__ import annotations

import math
import random

from repro.sim.clock import SimClock

__all__ = [
    "TimingObserver",
    "attach_timing_observer",
    "detect_onset",
    "estimate_rates",
    "load_inference_attack",
    "simulate_round_times",
    "timing_attack_benchmark",
]


class TimingObserver:
    """Accumulates adversary-visible round-release timestamps.

    The observer is storage-side: it learns the instant each round's
    first server access lands and nothing else.  Timestamps must be
    monotone non-decreasing (they come from a monotonic clock or a
    :class:`SimClock`); a regression raises immediately rather than
    silently corrupting the gap series.
    """

    __slots__ = ("timestamps",)

    def __init__(self) -> None:
        self.timestamps: list[float] = []

    def observe_round(self, t: float) -> None:
        if self.timestamps and t < self.timestamps[-1]:
            raise ValueError(
                f"non-monotone round timestamp: {t} after "
                f"{self.timestamps[-1]}")
        self.timestamps.append(float(t))

    def __len__(self) -> int:
        return len(self.timestamps)

    def gaps(self) -> list[float]:
        """Inter-round gaps (length ``len(self) - 1``)."""
        ts = self.timestamps
        return [b - a for a, b in zip(ts, ts[1:])]

    def summary(self) -> dict:
        """Gap statistics: the adversary's first-order view."""
        gaps = self.gaps()
        if not gaps:
            return {"rounds": len(self.timestamps), "gaps": 0}
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return {
            "rounds": len(self.timestamps),
            "gaps": len(gaps),
            "mean_gap": mean,
            "stdev_gap": math.sqrt(var),
            "min_gap": min(gaps),
            "max_gap": max(gaps),
        }


def attach_timing_observer(tracer, observer: TimingObserver, clock=None):
    """Stamp each round's first ``storage.access`` into ``observer``.

    Mirrors :func:`repro.analysis.monitor.attach_monitor`: subscribes to
    the tracer and returns the callback for later
    ``tracer.unsubscribe``.  ``clock`` supplies the timestamp — default
    is :func:`repro.obs.clock` (real monotonic time); pass a
    ``SimClock.now``-reading lambda for deterministic tests.

    Only the *first* access of each new round is stamped, because that
    is the instant the round becomes visible to the server; everything
    after it within the same round is protocol-shaped, not
    workload-shaped.
    """
    if clock is None:
        from repro.obs import clock as clock_fn
    else:
        clock_fn = clock
    last_round: list[object] = [None]

    def _on_record(record: dict) -> None:
        if (record.get("kind") != "event"
                or record.get("name") != "storage.access"):
            return
        round_no = record.get("attrs", {}).get("round")
        if round_no == last_round[0]:
            return
        last_round[0] = round_no
        observer.observe_round(clock_fn())

    tracer.subscribe(_on_record)
    return _on_record


# ----------------------------------------------------------------------
# the adversary
# ----------------------------------------------------------------------
def _pearson(xs: list[float], ys: list[float]) -> float:
    """Pearson correlation; 0.0 when either series is degenerate.

    "Degenerate" includes *numerically* constant series: a shaped
    schedule produces gaps identical up to float accumulation error, and
    correlating that rounding noise against anything yields an arbitrary
    value in [-1, 1].  A relative-variance floor (coefficient of
    variation below 1e-9) treats such series as carrying no signal.
    """
    n = len(xs)
    if n < 2 or n != len(ys):
        return 0.0
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if (sxx <= (1e-9 * abs(mx)) ** 2 * n
            or syy <= (1e-9 * abs(my)) ** 2 * n):
        return 0.0
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return sxy / math.sqrt(sxx * syy)


def estimate_rates(timestamps: list[float], r: int) -> list[float]:
    """The attacker's load estimate: ``r`` real requests per gap.

    Under on-fill scheduling a round releases once ``r`` real requests
    have arrived, so the offered rate across gap ``i`` is roughly
    ``r / gap_i``.  Zero-width gaps (possible on a coarse clock) map to
    0.0 rather than infinity — the correlation step cannot use an
    infinite sample anyway.
    """
    rates = []
    for a, b in zip(timestamps, timestamps[1:]):
        gap = b - a
        rates.append(r / gap if gap > 0 else 0.0)
    return rates


def load_inference_attack(timestamps: list[float],
                          true_rates: list[float], r: int) -> dict:
    """Score how well gap widths recover the offered-load curve.

    ``true_rates[i]`` is the ground-truth arrival rate in force across
    gap ``i`` (what the adversary is trying to learn).  The score is the
    absolute Pearson correlation between the gap-derived estimates and
    the truth: 1.0 means the schedule hands the load curve straight to
    the adversary, 0.0 means the gaps carry no linear information.
    """
    estimates = estimate_rates(timestamps, r)
    k = min(len(estimates), len(true_rates))
    correlation = _pearson(estimates[:k], true_rates[:k])
    return {
        "samples": k,
        "correlation": correlation,
        "leakage_score": abs(correlation),
    }


def detect_onset(timestamps: list[float]) -> int | None:
    """Locate the strongest mean shift in the gap series, if any.

    Scans every split point of the gap series and scores the mean
    difference weighted by ``sqrt(i * (n - i) / n)`` (the two-sample
    z-statistic's scaling), returning the gap index with the highest
    score — the adversary's estimate of when a flash crowd began.
    Returns ``None`` when the series is too short or carries no shift
    (all gaps equal, as under fixed-interval shaping).
    """
    gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
    n = len(gaps)
    if n < 4:
        return None
    total = sum(gaps)
    best_idx = None
    best_stat = 0.0
    left = 0.0
    for i in range(1, n):
        left += gaps[i - 1]
        mean_left = left / i
        mean_right = (total - left) / (n - i)
        stat = abs(mean_left - mean_right) * math.sqrt(i * (n - i) / n)
        if stat > best_stat:
            best_stat = stat
            best_idx = i
    mean_gap = total / n
    if best_idx is None or best_stat <= 1e-9 * max(mean_gap, 1e-12):
        return None
    return best_idx


# ----------------------------------------------------------------------
# schedule simulation
# ----------------------------------------------------------------------
def simulate_round_times(rates: list[float], r: int, seed: int = 0,
                         schedule: str = "on_fill",
                         interval: float | None = None,
                         service_seconds: float = 0.0) -> list[float]:
    """Simulate round-release instants for a given offered-load curve.

    ``rates[i]`` is the Poisson arrival rate (requests/second) in force
    while the proxy accumulates round ``i``'s batch.  Two schedules:

    * ``"on_fill"`` — the round fires as soon as ``r`` real requests
      have arrived (exponential inter-arrivals drawn from
      ``random.Random(seed)``), plus ``service_seconds`` of processing.
      The gap tracks the load: this is the leaky baseline.
    * ``"fixed"`` — the round fires every ``interval`` seconds
      (default: the mean on-fill gap implied by the *average* rate),
      regardless of arrivals.  The same rng draws are consumed, so the
      two schedules differ only in release policy, not in workload.

    Runs entirely on a :class:`SimClock` — no wall-clock reads, fully
    deterministic per seed.
    """
    if schedule not in ("on_fill", "fixed"):
        raise ValueError(f"unknown schedule {schedule!r}; "
                         "choose 'on_fill' or 'fixed'")
    rng = random.Random(seed)
    clock = SimClock()
    if schedule == "fixed" and interval is None:
        mean_rate = sum(rates) / len(rates) if rates else 1.0
        interval = r / mean_rate + service_seconds
    times = []
    for rate in rates:
        if rate <= 0:
            raise ValueError("arrival rates must be positive")
        fill = sum(rng.expovariate(rate) for _ in range(r))
        if schedule == "on_fill":
            clock.advance(fill + service_seconds)
        else:
            assert interval is not None
            clock.advance(interval)
        times.append(clock.now)
    return times


def timing_attack_benchmark(rounds: int = 64, r: int = 20, seed: int = 7,
                            base_rate: float = 200.0,
                            hot_factor: float = 4.0) -> dict:
    """Run both attacks against on-fill vs fixed-interval scheduling.

    The workload is a flash crowd: offered load runs at ``base_rate``
    (with multiplicative noise) for the first half of the run, then
    jumps by ``hot_factor`` at ``onset = rounds // 2`` — the signature a
    hot key's arrival leaves on an on-fill schedule.  Each schedule's
    leakage score combines the two attacks equally::

        score = 0.5 * |load correlation| + 0.5 * onset_score

    where ``onset_score`` is 1 at an exact change-point recovery,
    decaying linearly to 0 at half-a-run's error (and 0 when no onset is
    detected at all).  ``shaped_leaks_less`` is the headline bit the
    oracle asserts.
    """
    rng = random.Random(seed)
    onset = rounds // 2
    rates = [
        (base_rate * hot_factor if i >= onset else base_rate)
        * (0.8 + 0.4 * rng.random())
        for i in range(rounds)
    ]

    def _evaluate(schedule: str) -> dict:
        times = simulate_round_times(rates, r, seed=seed + 1,
                                     schedule=schedule)
        observer = TimingObserver()
        for t in times:
            observer.observe_round(t)
        attack = load_inference_attack(times, rates, r)
        detected = detect_onset(times)
        if detected is None:
            onset_score = 0.0
        else:
            err = abs(detected - onset) / max(1, rounds // 2)
            onset_score = max(0.0, 1.0 - 2.0 * err)
        return {
            "schedule": schedule,
            "summary": observer.summary(),
            "load_attack": attack,
            "onset_true": onset,
            "onset_detected": detected,
            "onset_score": onset_score,
            "leakage_score": 0.5 * attack["leakage_score"]
            + 0.5 * onset_score,
        }

    on_fill = _evaluate("on_fill")
    fixed = _evaluate("fixed")
    return {
        "schema": "repro.timing/1",
        "rounds": rounds,
        "r": r,
        "seed": seed,
        "base_rate": base_rate,
        "hot_factor": hot_factor,
        "on_fill": on_fill,
        "fixed": fixed,
        "leakage_drop": on_fill["leakage_score"] - fixed["leakage_score"],
        "shaped_leaks_less": (fixed["leakage_score"]
                              < on_fill["leakage_score"]),
    }
