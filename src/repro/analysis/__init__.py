"""Security-analysis toolkit: what the adversary sees, measured.

* :mod:`repro.analysis.uniformity` — α/β measurement per Definition 1 and
  verification of the Theorem 7.1/7.2 bounds (Table 2);
* :mod:`repro.analysis.histograms` — α-value histograms and the
  distribution-difference metrics behind Figures 4 and 5;
* :mod:`repro.analysis.attacks` — the inference attacks the paper cites:
  frequency analysis (§2) and an IHOP-style correlated co-occurrence
  attack (§8.3.2), runnable against any recorded trace;
* :mod:`repro.analysis.timing` — the timing-leakage observatory: round
  release schedules as a side channel, with load-inference and
  onset-detection attacks plus the fixed-interval shaping comparison.
"""

from repro.analysis.histograms import alpha_histogram, histogram_difference
from repro.analysis.uniformity import (
    UniformityReport,
    measure_alpha,
    measure_beta,
    verify_storage_invariants,
)
from repro.analysis.attacks import (
    cooccurrence_attack,
    frequency_analysis_attack,
)
from repro.analysis.leakage import LeakageSummary, leakage_summary
from repro.analysis.monitor import AlphaMonitor
from repro.analysis.report import AuditResult, security_audit
from repro.analysis.stats import (
    bootstrap_ci,
    ks_exponential,
    ks_statistic,
    percentile,
)
from repro.analysis.timing import (
    TimingObserver,
    attach_timing_observer,
    detect_onset,
    load_inference_attack,
    simulate_round_times,
    timing_attack_benchmark,
)

__all__ = [
    "AlphaMonitor",
    "AuditResult",
    "security_audit",
    "LeakageSummary",
    "TimingObserver",
    "UniformityReport",
    "alpha_histogram",
    "attach_timing_observer",
    "bootstrap_ci",
    "cooccurrence_attack",
    "detect_onset",
    "frequency_analysis_attack",
    "histogram_difference",
    "ks_exponential",
    "ks_statistic",
    "leakage_summary",
    "load_inference_attack",
    "measure_alpha",
    "measure_beta",
    "percentile",
    "simulate_round_times",
    "timing_attack_benchmark",
    "verify_storage_invariants",
]
