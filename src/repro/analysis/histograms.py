"""α-value histograms and their comparison (Figures 4 and 5).

The paper's obliviousness argument is empirical-distributional: run the
same configuration under two extreme input distributions and compare the
histograms of adversary-observable α values.  If they are (nearly)
indistinguishable, an adversary watching the server learns (nearly)
nothing about the input distribution.  Figure 4 compares skewed vs
uniform inputs; Figure 5 compares correlated vs independent queries.

Metrics reported, matching the paper's phrasing:

* ``mean_bucket_difference`` — "the average difference across different
  frequency buckets" (mean over buckets of |count₁ − count₂|);
* ``differing_fraction`` — "x% of the requests differ in their αs"
  (total variation: Σ|count₁ − count₂| / 2 / total requests).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

__all__ = ["HistogramComparison", "alpha_histogram", "histogram_difference"]


def alpha_histogram(alphas: list[int]) -> Counter:
    """Histogram of observed α values (bucket = exact α)."""
    return Counter(alphas)


@dataclass(frozen=True, slots=True)
class HistogramComparison:
    """Similarity metrics between two α histograms."""

    mean_bucket_difference: float
    total_difference: int
    differing_fraction: float
    buckets: int


def histogram_difference(first: Counter, second: Counter) -> HistogramComparison:
    """Compare two α histograms the way §8.3 does."""
    buckets = sorted(set(first) | set(second))
    if not buckets:
        return HistogramComparison(0.0, 0, 0.0, 0)
    diffs = [abs(first.get(b, 0) - second.get(b, 0)) for b in buckets]
    total_diff = sum(diffs)
    total_mass = sum(first.values()) + sum(second.values())
    differing = (total_diff / 2) / (total_mass / 2) if total_mass else 0.0
    return HistogramComparison(
        mean_bucket_difference=total_diff / len(buckets),
        total_difference=total_diff,
        differing_fraction=differing,
        buckets=len(buckets),
    )


def render_histogram(hist: Counter, width: int = 60, max_rows: int = 20) -> str:
    """ASCII rendering used by the examples (α value → bar of requests)."""
    if not hist:
        return "(empty histogram)"
    top = hist.most_common(max_rows)
    top.sort()
    peak = max(count for _, count in top)
    lines = []
    for alpha, count in top:
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"  alpha={alpha:>6d} | {bar} {count}")
    if len(hist) > max_rows:
        lines.append(f"  ... ({len(hist) - max_rows} more buckets)")
    return "\n".join(lines)
