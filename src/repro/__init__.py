"""Waffle: an online oblivious datastore - full reproduction.

This package reproduces the system and evaluation of *"Waffle: An Online
Oblivious Datastore for Protecting Data Access Patterns"* (SIGMOD 2023/24):
the Waffle proxy (``repro.core``), every substrate its evaluation depends
on (storage, crypto, workloads, baselines, simulated-time cost model), and
the security-analysis toolkit (alpha/beta-uniformity measurement,
alpha-histograms, inference attacks).

Quickstart::

    from repro import WaffleClient, WaffleConfig, WaffleDatastore

    items = {f"user{i:08d}": b"v%d" % i for i in range(1000)}
    config = WaffleConfig.paper_defaults(n=1000, seed=7)
    store = WaffleDatastore(config, items)
    client = WaffleClient(store)
    value = client.get_now("user00000042")   # report via repro.obs.export
"""

from repro.core.client import WaffleClient
from repro.core.config import SecurityLevel, WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.core.multimap import MultiMapWaffle
from repro.core.proxy import WaffleProxy
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "MultiMapWaffle",
    "ReproError",
    "SecurityLevel",
    "WaffleClient",
    "WaffleConfig",
    "WaffleDatastore",
    "WaffleProxy",
    "__version__",
]
