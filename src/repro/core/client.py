"""Client-side façade: buffered get/put over the Waffle batch protocol.

Waffle's proxy waits for ``R`` client requests before dispatching a batch
(§4, Challenge 1).  :class:`WaffleClient` reproduces that behaviour for
callers that think in terms of individual operations: ``get``/``put``
return :class:`PendingResult` handles that resolve when the batch they
joined is executed; :meth:`flush` forces a partial batch (e.g. at the end
of a trace); ``get_now``/``put_now`` are conveniences that flush
immediately for interactive use.
"""

from __future__ import annotations

from repro.core.batch import ClientRequest
from repro.core.datastore import WaffleDatastore
from repro.errors import ProtocolError
from repro.workloads.trace import Operation

__all__ = ["PendingResult", "WaffleClient"]


class PendingResult:
    """A response placeholder that resolves once its batch executes."""

    __slots__ = ("_value", "_done")

    def __init__(self) -> None:
        self._value: bytes | None = None
        self._done = False

    def _resolve(self, value: bytes) -> None:
        self._value = value
        self._done = True

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> bytes:
        if not self._done:
            raise ProtocolError(
                "result not ready: the batch has not been flushed yet"
            )
        return self._value  # type: ignore[return-value]


class WaffleClient:
    """Buffers requests into R-sized batches against one datastore."""

    def __init__(self, datastore: WaffleDatastore) -> None:
        self.datastore = datastore
        self._buffer: list[ClientRequest] = []
        self._pending: dict[int, PendingResult] = {}

    def __len__(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------
    # buffered interface
    # ------------------------------------------------------------------
    def get(self, key: str) -> PendingResult:
        """Queue a read; auto-dispatches when R requests have accumulated."""
        return self._submit(ClientRequest(op=Operation.READ, key=key))

    def put(self, key: str, value: bytes) -> PendingResult:
        """Queue a write; auto-dispatches when R requests have accumulated."""
        return self._submit(ClientRequest(op=Operation.WRITE, key=key, value=value))

    def _submit(self, request: ClientRequest) -> PendingResult:
        result = PendingResult()
        self._buffer.append(request)
        self._pending[request.request_id] = result
        if len(self._buffer) >= self.datastore.config.r:
            self.flush()
        return result

    def flush(self) -> int:
        """Dispatch the buffered requests (possibly fewer than R).

        Returns the number of requests executed.
        """
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        responses = self.datastore.execute_batch(batch)
        for response in responses:
            self._pending.pop(response.request_id)._resolve(response.value)
        return len(responses)

    # ------------------------------------------------------------------
    # immediate interface
    # ------------------------------------------------------------------
    def get_now(self, key: str) -> bytes:
        """Read ``key`` immediately (flushes the current batch)."""
        result = self.get(key)
        if not result.done:
            self.flush()
        return result.value

    def put_now(self, key: str, value: bytes) -> None:
        """Write ``key`` immediately (flushes the current batch)."""
        result = self.put(key, value)
        if not result.done:
            self.flush()
