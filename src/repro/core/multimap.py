"""Multi-map extension: keys with multiple associated values (§8.3.2).

The paper argues that because Waffle tolerates correlated queries, it
"can be easily extended to support multimaps wherein each key has multiple
associated values (e.g., relational data)".  The extension is exactly
that: a multi-map key ``k`` with ``s`` value slots is stored as ``s``
independent Waffle objects ``k⊕0 … k⊕(s-1)``, and a multi-map get/put
issues ``s`` correlated single-object requests.  Obliviousness of the
correlated sub-requests is precisely what §8.3.2 evaluates.
"""

from __future__ import annotations

from repro.core.client import WaffleClient
from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError

__all__ = ["MultiMapWaffle"]

_SLOT_SEPARATOR = "\x1f"


def slot_key(key: str, slot: int) -> str:
    """Storage key of one value slot of a multi-map key."""
    return f"{key}{_SLOT_SEPARATOR}{slot:04d}"


class MultiMapWaffle:
    """A multi-map (key → tuple of values) over a Waffle datastore.

    Parameters
    ----------
    config:
        Waffle parameters where ``n`` counts *slots*, i.e. it must equal
        ``len(items) * slots``; use :meth:`build` to derive it.
    items:
        Mapping from multi-map key to its tuple of values (all tuples the
        same length — equal-size objects, §3.1).
    """

    def __init__(self, config: WaffleConfig, items: dict[str, tuple[bytes, ...]],
                 slots: int, keychain: KeyChain | None = None) -> None:
        if slots <= 0:
            raise ConfigurationError("multi-map needs at least one value slot")
        lengths = {len(values) for values in items.values()}
        if lengths and lengths != {slots}:
            raise ConfigurationError(
                f"every key must carry exactly {slots} values, saw {lengths}"
            )
        if config.n != len(items) * slots:
            raise ConfigurationError(
                "config.n must count value slots: "
                f"expected {len(items) * slots}, got {config.n}"
            )
        self.slots = slots
        flattened = {
            slot_key(key, slot): value
            for key, values in items.items()
            for slot, value in enumerate(values)
        }
        self.datastore = WaffleDatastore(config, flattened, keychain=keychain)
        self._client = WaffleClient(self.datastore)

    @classmethod
    def build(cls, items: dict[str, tuple[bytes, ...]], slots: int,
              base_config: WaffleConfig, keychain: KeyChain | None = None,
              ) -> "MultiMapWaffle":
        """Construct with ``base_config`` re-scaled to the slot count."""
        config = base_config.scaled(len(items) * slots)
        return cls(config, items, slots, keychain=keychain)

    # ------------------------------------------------------------------
    # multi-map operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> tuple[bytes, ...]:
        """Fetch all value slots of ``key`` (issues ``slots`` sub-requests)."""
        results = [self._client.get(slot_key(key, slot)) for slot in range(self.slots)]
        if not all(result.done for result in results):
            self._client.flush()
        return tuple(result.value for result in results)

    def put(self, key: str, values: tuple[bytes, ...]) -> None:
        """Overwrite all value slots of ``key``."""
        if len(values) != self.slots:
            raise ConfigurationError(
                f"expected {self.slots} values, got {len(values)}"
            )
        results = [
            self._client.put(slot_key(key, slot), value)
            for slot, value in enumerate(values)
        ]
        if not all(result.done for result in results):
            self._client.flush()

    def put_slot(self, key: str, slot: int, value: bytes) -> None:
        """Overwrite one value slot."""
        if not 0 <= slot < self.slots:
            raise ConfigurationError(f"slot {slot} out of range")
        result = self._client.put(slot_key(key, slot), value)
        if not result.done:
            self._client.flush()
