"""Waffle core: the paper's primary contribution.

Public API
----------
:class:`WaffleDatastore` is the entry point: construct it from a
:class:`WaffleConfig` plus the initial key-value pairs, then issue
``get``/``put``/``delete`` through a :class:`WaffleClient` (or feed request
batches directly to the proxy).  ``MultiMapWaffle`` layers multi-value keys
on top (§8.3.2); inserts/deletes swap real and dummy objects (§6.2).
"""

from repro.core.batch import ClientRequest, ClientResponse
from repro.core.config import SecurityLevel, WaffleConfig
from repro.core.client import WaffleClient
from repro.core.datastore import WaffleDatastore
from repro.core.frontend import ConcurrentFrontend
from repro.core.multimap import MultiMapWaffle
from repro.core.proxy import WaffleProxy
from repro.core.scheduler import BatchScheduler

__all__ = [
    "BatchScheduler",
    "ClientRequest",
    "ClientResponse",
    "ConcurrentFrontend",
    "MultiMapWaffle",
    "SecurityLevel",
    "WaffleClient",
    "WaffleConfig",
    "WaffleDatastore",
    "WaffleProxy",
]
