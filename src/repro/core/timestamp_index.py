"""Access-timestamp index: the proxy's two balanced BSTs (§6.1).

Waffle maintains one balanced BST for real objects and one for dummy
objects, ordered on ``<ts : plaintext_key>``, to find least-recently-
accessed objects for fake queries (Challenge 2).  This module wraps the
treap substrate with Waffle's specific semantics:

* **Real index** (:class:`RealObjectIndex`): tracks *server-resident* real
  keys only — Algorithm 1 line 26 requires fake-query candidates to not be
  in the cache, so cached keys are removed from the tree and re-inserted
  on eviction.  The authoritative ``timestamp`` of *every* real key (cached
  or not) is kept alongside, because ``GetIndex`` needs it when evicted
  objects are written back.
* **Dummy index** (:class:`DummyObjectIndex`): all ``D`` dummies are always
  server-resident.  The paper resets all dummy timestamps once every
  ``D/f_D`` batches "to randomize the order in which dummy objects are
  picked".  A naive reset would desynchronize the selection order from the
  storage ids (which embed the timestamp of the *last write*), so the
  index keeps two notions per dummy: ``stored_ts`` — the timestamp baked
  into its current storage id — and the tree position used for selection,
  whose tiebreak is reshuffled on every epoch reset.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.ds.treap import Treap
from repro.seeding import derive_seed, seeded_rng

__all__ = ["DummyObjectIndex", "RealObjectIndex"]


class RealObjectIndex:
    """Timestamps for real objects + ordered index of server-resident ones.

    Tree order is ``(timestamp, arrival, key)``: the arrival counter makes
    equal-timestamp keys FIFO, so a freshly evicted key cannot be
    indefinitely preempted by later evictions that happen to sort before
    it lexicographically (observable as an α tail otherwise).
    """

    __slots__ = ("_timestamps", "_tree", "_arrivals")

    def __init__(self, keys: Iterable[str],
                 seed: int | None = None) -> None:
        self._timestamps: dict[str, int] = {}
        self._tree = Treap(seed=seed)
        self._arrivals = 0
        for key in keys:
            self._timestamps[key] = 0

    def __len__(self) -> int:
        return len(self._timestamps)

    def __contains__(self, key: str) -> bool:
        return key in self._timestamps

    @property
    def server_resident_count(self) -> int:
        return len(self._tree)

    def timestamp(self, key: str) -> int:
        """Current access timestamp of ``key`` (BST.getTimestamp)."""
        return self._timestamps[key]

    def _next_arrival(self) -> int:
        self._arrivals += 1
        return self._arrivals

    def set_timestamp(self, key: str, ts: int) -> None:
        """BST.setTimestamp: update ``key``'s timestamp; if the key is
        tracked as server-resident its tree position moves accordingly."""
        if key not in self._timestamps:
            raise KeyError(key)
        self._timestamps[key] = ts
        if key in self._tree:
            self._tree.insert(key, (ts, self._next_arrival(), key))

    def mark_server_resident(self, key: str) -> None:
        """Key now lives on the server: make it a fake-query candidate."""
        self._tree.insert(
            key, (self._timestamps[key], self._next_arrival(), key))

    def mark_cached(self, key: str) -> None:
        """Key now lives in the cache: exclude it from fake-query selection."""
        if key in self._tree:
            self._tree.remove(key)

    def min_timestamp_key(self) -> str:
        """BST.getMinTimestampObj(real): least-recently-accessed resident key."""
        _, key = self._tree.min()
        return key

    def pop_min_keys(self, count: int, ts: int) -> list[tuple[str, int]]:
        """Batched fake-query selection: take the ``count`` least-recently-
        accessed resident keys, stamp each with ``ts`` and mark it cached.

        Returns ``(key, previous_timestamp)`` pairs in selection order —
        the previous timestamp is what ``GetIndex`` must feed the PRF.
        Equivalent to ``count`` rounds of :meth:`min_timestamp_key` +
        :meth:`set_timestamp` + :meth:`mark_cached` (including the arrival
        counter, so eviction FIFO tiebreaks are unchanged), but the tree
        is descended once instead of ``3·count`` times.
        """
        selected: list[tuple[str, int]] = []
        for _, key in self._tree.pop_min_many(count):
            selected.append((key, self._timestamps[key]))
            self._timestamps[key] = ts
            self._arrivals += 1
        return selected

    def random_resident_key(self, rng: random.Random) -> str:
        """Uniformly random server-resident key (the Challenge-2 ablation:
        what happens when fake queries ignore recency)."""
        _, key = self._tree.select(rng.randrange(len(self._tree)))
        return key

    def add_key(self, key: str, ts: int, server_resident: bool) -> None:
        """Register a brand-new real key (insert support, §6.2)."""
        if key in self._timestamps:
            raise KeyError(f"key already tracked: {key}")
        self._timestamps[key] = ts
        if server_resident:
            self._tree.insert(key, (ts, self._next_arrival(), key))

    def drop_key(self, key: str) -> None:
        """Forget a real key entirely (delete support, §6.2)."""
        del self._timestamps[key]
        if key in self._tree:
            self._tree.remove(key)


class DummyObjectIndex:
    """Selection order and stored timestamps for the ``D`` dummy objects."""

    __slots__ = ("_stored_ts", "_tree", "_rng", "_accessed_since_reset",
                 "reshuffle")

    def __init__(self, keys: Iterable[str], seed: int | None = None,
                 reshuffle: bool = True) -> None:
        self._rng = seeded_rng(seed)
        #: Apply the paper's epoch reset (see WaffleConfig.dummy_policy).
        self.reshuffle = reshuffle
        self._stored_ts: dict[str, int] = {}
        self._tree = Treap(seed=derive_seed(seed, stream=1))
        for key in keys:
            self._stored_ts[key] = 0
            self._tree.insert(key, (0, self._rng.random(), key))
        self._accessed_since_reset = 0

    def __len__(self) -> int:
        return len(self._stored_ts)

    def __contains__(self, key: str) -> bool:
        return key in self._stored_ts

    def stored_timestamp(self, key: str) -> int:
        """Timestamp embedded in the dummy's current storage id."""
        return self._stored_ts[key]

    def min_timestamp_key(self) -> str:
        """BST.getMinTimestampObj(dummy)."""
        _, key = self._tree.min()
        return key

    def take_min_keys(self, count: int) -> list[str]:
        """Batched BST.getMinTimestampObj: detach the ``count`` least keys.

        Stored timestamps are untouched (``GetIndex`` still needs them for
        the ids being read), and the keys leave the selection tree, so a
        dummy cannot be selected twice in one batch.  Callers must follow
        up with :meth:`record_access_many` (rewritten dummies) and/or
        :meth:`retire` (dummies swapped out for inserted real objects).
        """
        return [key for _, key in self._tree.pop_min_many(count)]

    def record_access_many(self, keys: Iterable[str], ts: int) -> None:
        """Batched :meth:`record_access` over keys already detached by
        :meth:`take_min_keys`; tiebreak draws happen in ``keys`` order, so
        the selection sequence matches the one-at-a-time path exactly."""
        for key in keys:
            self._stored_ts[key] = ts
            self._tree.insert(key, (ts, self._rng.random(), key))
        self._accessed_since_reset += len(keys)

    def retire(self, key: str) -> int:
        """Forget a dummy already detached by :meth:`take_min_keys` (insert
        support swaps it for a real key); returns its stored timestamp."""
        return self._stored_ts.pop(key)

    def record_access(self, key: str, ts: int) -> None:
        """The dummy was just read; its next storage id embeds ``ts``.

        Once every dummy has been accessed (``D`` accesses), all selection
        positions are reshuffled — the paper's epoch reset — while the
        stored timestamps, which storage ids depend on, advance normally.
        The reshuffle is deferred to :meth:`end_round` so a dummy cannot
        be selected twice within one batch (its new id is only written in
        the round's write phase).
        """
        self._stored_ts[key] = ts
        self._tree.insert(key, (ts, self._rng.random(), key))
        self._accessed_since_reset += 1

    def end_round(self, ts: int) -> None:
        """Apply the epoch reset if every dummy has been accessed."""
        if not self.reshuffle:
            return
        if self._stored_ts and self._accessed_since_reset >= len(self._stored_ts):
            self._reshuffle(ts)
            self._accessed_since_reset = 0

    def _reshuffle(self, ts: int) -> None:
        entries = list(self._stored_ts)
        self._rng.shuffle(entries)
        # Seed the rebuilt tree from the epoch timestamp: deterministic
        # under replay, varies per epoch, and consumes no draws from
        # self._rng (whose stream pinned traces depend on).
        fresh = Treap(seed=derive_seed(ts, stream=1))
        for key in entries:
            fresh.insert(key, (ts, self._rng.random(), key))
        self._tree = fresh

    def swap_out(self, key: str) -> int:
        """Remove a dummy (insert support swaps it for a real key); returns
        the timestamp baked into its current storage id."""
        ts = self._stored_ts.pop(key)
        self._tree.remove(key)
        return ts

    def swap_in(self, key: str, ts: int) -> None:
        """Add a dummy (delete support swaps a real key for a dummy)."""
        if key in self._stored_ts:
            raise KeyError(f"dummy already tracked: {key}")
        self._stored_ts[key] = ts
        self._tree.insert(key, (ts, self._rng.random(), key))

    def any_key(self) -> str:
        """An arbitrary dummy key (used by insert's swap)."""
        _, key = self._tree.min()
        return key
