"""Concurrent client front-end: many client threads, one batching proxy.

The paper's proxy exists "to support multiple clients requesting data
concurrently" (§3.1).  :class:`ConcurrentFrontend` provides that shape
for real threads: clients call :meth:`get`/:meth:`put` from any thread
and block until their batch completes.  A dispatcher forms batches of up
to R requests — dispatching as soon as R are waiting, or when
``max_delay_s`` passes with a partial batch — and runs Algorithm 1 under
a lock (the proxy itself is single-threaded per round, like the paper's
per-batch critical section; Figure 2c's multi-core scaling happens
*inside* a round and is modelled by the cost model).

Consistency: requests the proxy serves within one batch are ordered by
their position in the batch (Algorithm 1 processes them in sequence), so
per-thread program order is preserved and every value read was written
by some client — the linearizability tests hammer this with many
threads.
"""

from __future__ import annotations

import threading

from repro.core.batch import ClientRequest
from repro.core.datastore import WaffleDatastore
from repro.errors import ClosedError, ConfigurationError
from repro.workloads.trace import Operation

__all__ = ["ConcurrentFrontend"]


class _Waiter:
    __slots__ = ("request", "event", "value", "error")

    def __init__(self, request: ClientRequest) -> None:
        self.request = request
        self.event = threading.Event()
        self.value: bytes | None = None
        self.error: BaseException | None = None


class ConcurrentFrontend:
    """Thread-safe batching facade over a Waffle datastore.

    Parameters
    ----------
    datastore:
        The deployment to serve.
    max_delay_s:
        Longest a partial batch waits for stragglers before dispatching.
    """

    def __init__(self, datastore: WaffleDatastore,
                 max_delay_s: float = 0.01) -> None:
        if max_delay_s <= 0:
            raise ConfigurationError("max_delay_s must be positive")
        self.datastore = datastore
        self.max_delay_s = max_delay_s
        self._lock = threading.Lock()
        self._queue: list[_Waiter] = []
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self.batches_dispatched = 0
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            daemon=True)
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # client interface (called from any thread)
    # ------------------------------------------------------------------
    def get(self, key: str) -> bytes:
        return self._submit(ClientRequest(op=Operation.READ, key=key))

    def put(self, key: str, value: bytes) -> bytes:
        return self._submit(ClientRequest(op=Operation.WRITE, key=key,
                                          value=value))

    def _submit(self, request: ClientRequest) -> bytes:
        waiter = _Waiter(request)
        with self._lock:
            if self._closed:
                raise ClosedError("frontend is closed")
            self._queue.append(waiter)
            self._wakeup.notify()
        waiter.event.wait()
        if waiter.error is not None:
            raise waiter.error
        return waiter.value  # type: ignore[return-value]

    def close(self) -> None:
        """Drain outstanding requests and stop the dispatcher."""
        with self._lock:
            self._closed = True
            self._wakeup.notify()
        self._dispatcher.join(timeout=5)

    def __enter__(self) -> "ConcurrentFrontend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        r = self.datastore.config.r
        while True:
            with self._lock:
                if not self._queue:
                    if self._closed:
                        return
                    self._wakeup.wait(timeout=self.max_delay_s)
                    continue
                if len(self._queue) < r and not self._closed:
                    # Give stragglers a chance to fill the batch.
                    self._wakeup.wait(timeout=self.max_delay_s)
                take = self._queue[:r]
                self._queue = self._queue[len(take):]
            if take:
                self._run_batch(take)

    def _run_batch(self, waiters: list[_Waiter]) -> None:
        try:
            responses = self.datastore.execute_batch(
                [waiter.request for waiter in waiters])
            by_id = {resp.request_id: resp.value for resp in responses}
            for waiter in waiters:
                waiter.value = by_id[waiter.request.request_id]
        except BaseException as error:  # noqa: BLE001 - deliver to callers
            for waiter in waiters:
                waiter.error = error
        finally:
            for waiter in waiters:
                waiter.event.set()
            with self._lock:
                self.batches_dispatched += 1
