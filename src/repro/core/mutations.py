"""Insert/delete support: swapping dummy and real objects (§6.2).

The paper: "Depending on the number of dummy objects, D, configured by an
application, Waffle can support insert and delete requests by swapping
dummy objects for real objects for inserts and vice versa for deletes."

The proxy drains this queue at the start of each batch round:

* an **insert** consumes one dummy — the proxy reads the dummy's storage
  id in a regular fake-dummy slot but *retires* it instead of rewriting
  it, while the new real object enters the cache and is written out under
  a PRF-derived id on eviction.  D shrinks by one, N grows by one.
* a **delete** births one dummy — the deleted key's server copy (if any)
  is force-read in a fake-real slot and dropped, while a fresh dummy is
  written in its place.  N shrinks by one, D grows by one.

Both directions keep every round at exactly ``B`` reads and ``B`` writes
and change the α/β bounds only through the updated N and D, which
:meth:`~repro.core.config.WaffleConfig.alpha_bound` reflects when
re-evaluated with the current counts (the paper notes the bounds change;
§7's formulas remain the governing expressions).
"""

from __future__ import annotations

from collections import deque

from repro.errors import ProtocolError

__all__ = ["MutationQueue"]


class MutationQueue:
    """Pending insert/delete mutations awaiting the next batch rounds."""

    __slots__ = ("_inserts", "_deletes")

    def __init__(self) -> None:
        self._inserts: deque[tuple[str, bytes]] = deque()
        self._deletes: deque[str] = deque()

    def enqueue_insert(self, key: str, value: bytes) -> None:
        if any(k == key for k, _ in self._inserts):
            raise ProtocolError(f"insert already pending for {key!r}")
        self._inserts.append((key, value))

    def enqueue_delete(self, key: str) -> None:
        if key in self._deletes:
            raise ProtocolError(f"delete already pending for {key!r}")
        self._deletes.append(key)

    def drain(self, insert_limit: int, delete_limit: int,
              ) -> tuple[list[tuple[str, bytes]], list[str]]:
        """Take up to the given numbers of inserts and deletes for one round.

        Inserts are bounded by the dummy reads per round (f_D); deletes by
        the guaranteed fake-real budget (f_R minimum).
        """
        inserts = [self._inserts.popleft()
                   for _ in range(min(insert_limit, len(self._inserts)))]
        deletes = [self._deletes.popleft()
                   for _ in range(min(delete_limit, len(self._deletes)))]
        return inserts, deletes

    def has_insert(self, key: str) -> bool:
        """Whether an insert of ``key`` is pending (client retries are
        idempotent: a resubmitted mutation that already survived — e.g.
        inside a promoted standby's snapshot — must not enqueue twice)."""
        return any(k == key for k, _ in self._inserts)

    def has_delete(self, key: str) -> bool:
        return key in self._deletes

    @property
    def pending_inserts(self) -> int:
        return len(self._inserts)

    @property
    def pending_deletes(self) -> int:
        return len(self._deletes)
