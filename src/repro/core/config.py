"""Waffle system parameters and the theoretical α/β bounds.

Table 1 of the paper defines the tunable parameters; Theorems 7.1 and 7.2
give the security bounds they induce:

* α (upper bound, Theorem 7.1): any object written to the server is read
  within ``ceil(max((N-1)/(B-R-f_D), D/f_D))`` batch rounds.
* β (lower bound, Theorem 7.2): an object read from the server is written
  back no earlier than ``floor(C/(B-f_D+R) - 1)`` rounds later.

Lower α and higher β mean more security (Theorem 5.1); the
``security_score`` β/α is what the paper's parameter search maximizes
(§8.3.1).  The preset constructors reproduce Table 2's three security
levels and §8.2's defaults, parameterized by N so experiments can scale.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["SecurityLevel", "WaffleConfig"]

#: Sentinel α reported when f_R can drop to values so small the bound is
#: effectively unbounded; the paper prints 999999 for its low-security row.
ALPHA_UNBOUNDED = 999_999


class SecurityLevel(enum.Enum):
    """The three named parameter presets of Table 2."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


@dataclass(frozen=True)
class WaffleConfig:
    """Waffle's tunable system parameters (Table 1).

    Attributes
    ----------
    n:
        Number of real objects, N.
    b:
        Batch size B sent to the server per round.
    r:
        Maximum number of (deduplicated) real client requests per batch, R.
    f_d:
        Fake queries on dummy objects per batch, f_D.
    d:
        Number of dummy objects in the system, D.
    c:
        Proxy cache size, C.
    value_size:
        Object value size in bytes (all values equal length, §3.1).
    seed:
        Master seed for keys, dummy generation and tie-breaking; fixing it
        makes an entire deployment reproducible.
    """

    n: int
    b: int
    r: int
    f_d: int
    d: int
    c: int
    value_size: int = 1024
    seed: int | None = None
    #: Fake-dummy selection policy.  ``"reshuffle"`` is the paper's
    #: design: all dummy timestamps reset every ceil(D/f_D) batches to
    #: randomize the selection order.  We found this *weakens* the dummy
    #: component of Theorem 7.1 to 2*ceil(D/f_D) - 2 (a dummy read at the
    #: start of one epoch can be reshuffled to the end of the next), a gap
    #: the paper's short runs (~3.5 epochs) could not observe.
    #: ``"round_robin"`` skips the reset and satisfies Theorem 7.1 exactly.
    #: See :meth:`alpha_bound` vs :meth:`alpha_bound_effective`.
    dummy_policy: str = "reshuffle"
    #: Crypto backend name (``pure``/``nacl``/``openssl``/``auto``; see
    #: :mod:`repro.crypto.backend`).  ``None`` defers to the
    #: ``REPRO_CRYPTO_BACKEND`` environment variable, then ``pure``.
    #: Every backend is byte-identical — this knob trades wall clock,
    #: never bytes, so traces and checkpoints are backend-independent.
    crypto_backend: str | None = None
    #: Fake-real selection policy.  ``"least_recent"`` is Waffle's design
    #: (Challenge 2).  ``"uniform"`` picks server-resident keys uniformly
    #: at random instead — the ablation baseline, which loses the α bound
    #: entirely (a key can dodge selection arbitrarily long).
    fake_real_policy: str = "least_recent"

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError("N must be positive")
        if self.b <= 1:
            raise ConfigurationError("batch size B must exceed 1 (§4)")
        if not 1 <= self.r <= self.b:
            raise ConfigurationError("R must satisfy 1 <= R <= B")
        if self.f_d < 0 or self.d < 0:
            raise ConfigurationError("f_D and D must be non-negative")
        if (self.f_d == 0) != (self.d == 0):
            raise ConfigurationError("f_D and D must both be zero or both positive")
        if self.f_d > self.d:
            raise ConfigurationError("f_D cannot exceed the number of dummies D")
        if self.r + self.f_d >= self.b:
            raise ConfigurationError(
                "B must leave room for at least one fake query on real "
                "objects: R + f_D < B"
            )
        if self.c < 0:
            raise ConfigurationError("cache size C must be non-negative")
        if self.c > self.n:
            raise ConfigurationError("cache size C cannot exceed N")
        if self.value_size <= 0:
            raise ConfigurationError("value_size must be positive")
        if self.dummy_policy not in ("reshuffle", "round_robin"):
            raise ConfigurationError(
                f"unknown dummy policy: {self.dummy_policy!r}"
            )
        if self.fake_real_policy not in ("least_recent", "uniform"):
            raise ConfigurationError(
                f"unknown fake-real policy: {self.fake_real_policy!r}"
            )
        if self.c + self.b - self.f_d > self.n:
            raise ConfigurationError(
                "the server must always hold at least B - f_D real objects "
                "for fake queries: require C + B - f_D <= N"
            )
        if self.crypto_backend is not None:
            # Validation only (raises ConfigurationError on unknown names);
            # resolution to an available backend happens at keychain build.
            from repro.crypto.backend import resolve_backend_name

            resolve_backend_name(self.crypto_backend)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def f_r_min(self) -> int:
        """Minimum fake queries on real objects per batch: B - R - f_D."""
        return self.b - self.r - self.f_d

    def alpha_bound(self) -> int:
        """Theorem 7.1: α = ceil(max((N-1)/(B-R-f_D), D/f_D))."""
        real_term = (self.n - 1) / self.f_r_min
        dummy_term = self.d / self.f_d if self.f_d else 0.0
        alpha = math.ceil(max(real_term, dummy_term))
        return min(alpha, ALPHA_UNBOUNDED)

    def alpha_bound_effective(self) -> int:
        """The α bound the *implementation* guarantees.

        Equals Theorem 7.1 under ``round_robin`` dummy selection.  Under
        the paper's ``reshuffle`` policy the dummy term becomes
        ``2*ceil(D/f_D) - 2`` (worst case across an epoch boundary); the
        real-object term is unchanged.
        """
        real_term = math.ceil((self.n - 1) / self.f_r_min)
        if self.f_d == 0:
            dummy_term = 0
        elif self.dummy_policy == "round_robin":
            dummy_term = math.ceil(self.d / self.f_d)
        else:
            dummy_term = 2 * math.ceil(self.d / self.f_d) - 2
        return min(max(real_term, dummy_term), ALPHA_UNBOUNDED)

    def beta_bound(self) -> int:
        """Theorem 7.2: β = floor(C/(B-f_D+R) - 1), clamped at 0."""
        turnover = self.b - self.f_d + self.r
        return max(0, math.floor(self.c / turnover - 1))

    def security_score(self) -> float:
        """β/α — the quantity maximized by the paper's parameter search."""
        alpha = self.alpha_bound()
        return self.beta_bound() / alpha if alpha else math.inf

    def bandwidth_overhead(self) -> float:
        """Constant bandwidth overhead (f_D + f_R)/R per real request (§6.2)."""
        return (self.f_d + self.f_r_min) / self.r

    def cache_turnover_per_round(self) -> int:
        """Cache recency updates per round: B - f_D + R (Theorem 7.2 proof)."""
        return self.b - self.f_d + self.r

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_defaults(cls, n: int = 2**20, seed: int | None = None) -> "WaffleConfig":
        """§8.2 defaults, scaled proportionally from the paper's N=2^20.

        B=2500, R=40% of B, f_D=20% of B, C=2% of N, and D chosen so the
        two α ratios are equal ((N-1)/f_R = D/f_D), which the paper states
        maximizes security for a given budget (§8.2 'Changing D').
        """
        scale = n / 2**20
        b = max(10, round(2500 * scale))
        r = max(1, round(0.4 * b))
        f_d = max(1, round(0.2 * b))
        c = max(1, round(0.02 * n))
        d = cls._balanced_dummies(n, b, r, f_d)
        return cls(n=n, b=b, r=r, f_d=f_d, d=d, c=c, seed=seed)

    @staticmethod
    def _balanced_dummies(n: int, b: int, r: int, f_d: int) -> int:
        """D making (N-1)/(B-R-f_D) equal D/f_D (the high-security balance)."""
        f_r = b - r - f_d
        if f_r <= 0 or f_d == 0:
            return 0
        return max(f_d, round((n - 1) / f_r * f_d))

    @classmethod
    def security_preset(cls, level: SecurityLevel, n: int = 10**6,
                        seed: int | None = None) -> "WaffleConfig":
        """Table 2's high/medium/low parameter rows, scaled by N.

        At the paper's N=10^6 these reproduce Table 2 exactly:
        high → α=165, β=161; medium → α=1000, β=5; low → α=999999, β=4.
        """
        scale = n / 10**6
        if level is SecurityLevel.HIGH:
            b = max(20, round(10_000 * scale))
            r = max(1, round(25 * scale))
            f_d = round(3914 * scale)
            d = max(f_d, round(4000 * scale))
            c = round(0.99 * n)
        elif level is SecurityLevel.MEDIUM:
            b = max(10, round(2500 * scale))
            r = max(1, round(1000 * scale))
            f_d = round(500 * scale)
            d = round(350_000 * scale)
            c = round(0.02 * n)
        else:  # LOW: R = 0.8B - 1 leaves f_R = 1 (not oblivious, §8.3.1)
            b = max(10, round(2500 * scale))
            f_d = round(500 * scale)
            r = b - f_d - 1
            d = round(350_000 * scale)
            c = round(0.02 * n)
        f_d = max(1, f_d)
        d = max(f_d, d)
        return cls(n=n, b=b, r=r, f_d=f_d, d=d, c=c, seed=seed)

    def scaled(self, n: int) -> "WaffleConfig":
        """This configuration re-derived proportionally for a new N."""
        factor = n / self.n
        b = max(2, round(self.b * factor))
        r = min(b - 1, max(1, round(self.r * factor)))
        f_d = max(0, min(b - r - 1, round(self.f_d * factor)))
        d = 0 if f_d == 0 else max(f_d, round(self.d * factor))
        c = min(n, max(0, round(self.c * factor)))
        return replace(self, n=n, b=b, r=r, f_d=f_d, d=d, c=c)
