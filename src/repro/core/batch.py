"""Request/response types flowing between clients and the Waffle proxy.

Algorithm 1 consumes batches of ``R`` client requests, each carrying a
unique request id (the key of the ``cliResp`` map), and produces one
response per request.  These are the trusted-domain types; nothing here is
visible to the server.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.workloads.trace import Operation, TraceRequest

__all__ = ["ClientRequest", "ClientResponse", "request_from_trace"]

_request_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ClientRequest:
    """One client request as seen by the proxy (rId, op, k, val)."""

    op: Operation
    key: str
    value: bytes | None = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.op is Operation.WRITE and self.value is None:
            raise ValueError("write requests require a value")


@dataclass(frozen=True, slots=True)
class ClientResponse:
    """The proxy's answer to one client request."""

    request_id: int
    key: str
    value: bytes


def request_from_trace(request: TraceRequest) -> ClientRequest:
    """Wrap a workload trace record as a proxy request."""
    return ClientRequest(op=request.op, key=request.key, value=request.value)
