"""Public facade: a Waffle datastore over an untrusted key-value server.

:class:`WaffleDatastore` wires together the proxy, the (Redis-like) server
and the adversary recorder, handles value padding (all outsourced values
are equal length, §3.1), and exposes the batch entry point plus
insert/delete.  Most applications use it through
:class:`~repro.core.client.WaffleClient`, which buffers individual
get/put calls into R-request batches.
"""

from __future__ import annotations

from repro.core.batch import ClientRequest, ClientResponse
from repro.core.config import WaffleConfig
from repro.core.proxy import WaffleProxy
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.storage.base import StorageBackend
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim

__all__ = ["WaffleDatastore", "pad_value", "unpad_value"]

_LENGTH_HEADER = 4


def pad_value(value: bytes, padded_size: int) -> bytes:
    """Length-prefix and zero-pad ``value`` to exactly ``padded_size``."""
    if len(value) > padded_size - _LENGTH_HEADER:
        raise ConfigurationError(
            f"value of {len(value)} bytes exceeds padded size "
            f"{padded_size} - {_LENGTH_HEADER} header bytes"
        )
    header = len(value).to_bytes(_LENGTH_HEADER, "big")
    return header + value + b"\x00" * (padded_size - _LENGTH_HEADER - len(value))


def unpad_value(padded: bytes) -> bytes:
    """Inverse of :func:`pad_value`."""
    length = int.from_bytes(padded[:_LENGTH_HEADER], "big")
    return padded[_LENGTH_HEADER: _LENGTH_HEADER + length]


class WaffleDatastore:
    """A complete Waffle deployment (server + proxy + recorder).

    Parameters
    ----------
    config:
        System parameters.  ``config.value_size`` is the *padded* object
        size; client values may be up to 4 bytes smaller.
    items:
        The initial N key-value pairs.
    store:
        Optional pre-built server backend; defaults to a write-once
        :class:`~repro.storage.redis_sim.RedisSim`.
    record:
        Capture the adversary-visible access trace (the default — the
        security analysis needs it; disable for long perf-only runs).
    keychain:
        Proxy secrets; defaults to a fresh random keychain (pass
        ``KeyChain.from_seed`` for reproducibility).
    """

    def __init__(self, config: WaffleConfig, items: dict[str, bytes],
                 store: StorageBackend | None = None, record: bool = True,
                 keychain: KeyChain | None = None, log_ids: bool = False) -> None:
        self.config = config
        backing = store if store is not None else RedisSim(write_once=True)
        self.recorder: RecordingStore | None = None
        if record:
            self.recorder = RecordingStore(backing)
            backing = self.recorder
        self.proxy = WaffleProxy(config, store=backing, keychain=keychain,
                                 log_ids=log_ids)
        padded = {
            key: pad_value(value, config.value_size) for key, value in items.items()
        }
        self.proxy.initialize(padded)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def execute_batch(self, requests: list[ClientRequest]) -> list[ClientResponse]:
        """Run one batch round (up to R requests) and return responses.

        Write-request values are padded on the way in; all response values
        are unpadded on the way out.
        """
        cfg = self.config
        prepared = [
            ClientRequest(op=req.op, key=req.key,
                          value=pad_value(req.value, cfg.value_size),
                          request_id=req.request_id)
            if req.value is not None else req
            for req in requests
        ]
        responses = self.proxy.handle_batch(prepared)
        return [
            ClientResponse(request_id=resp.request_id, key=resp.key,
                           value=unpad_value(resp.value))
            for resp in responses
        ]

    # ------------------------------------------------------------------
    # inserts and deletes (§6.2)
    # ------------------------------------------------------------------
    def insert(self, key: str, value: bytes) -> None:
        """Queue a brand-new key; it takes effect within upcoming rounds."""
        if self.proxy.contains_key(key):
            raise ConfigurationError(f"key already exists: {key!r}")
        if self.proxy.dummy_count - self.proxy.mutations.pending_inserts <= 0:
            raise ConfigurationError(
                "no dummy objects left to swap for the insert; "
                "provision a larger D"
            )
        self.proxy.mutations.enqueue_insert(
            key, pad_value(value, self.config.value_size)
        )

    def delete(self, key: str) -> None:
        """Queue removal of ``key``; its slot becomes a dummy object."""
        if not self.proxy.contains_key(key):
            raise KeyNotFoundError(key)
        self.proxy.mutations.enqueue_delete(key)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def server_size(self) -> int:
        """Objects currently outsourced (bounded by N + D)."""
        return len(self.proxy.store)

    def current_bounds(self) -> tuple[int, int]:
        """(α, β) bounds under the *current* N and D (mutations move them)."""
        from dataclasses import replace

        cfg = replace(
            self.config,
            n=self.proxy.real_count,
            d=self.proxy.dummy_count,
            c=min(self.config.c, self.proxy.real_count),
        )
        return cfg.alpha_bound(), cfg.beta_bound()
