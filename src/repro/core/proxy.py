"""The Waffle proxy: Algorithm 1 plus initialization (§6).

The proxy is the trusted, stateful component.  Per batch round it:

1. **Read phase** — serves cache hits locally; deduplicates misses;
   appends ``f_D`` fake queries on dummy objects and
   ``f_R = B - (r + f_D)`` fake queries on least-recently-accessed real
   objects; derives each storage id as ``prf(k, ts_k)`` *before* bumping
   ``ts_k`` to the current round; reads the ``B`` ids in one pipelined
   batch and then deletes them (each id is read at most once, Challenge 4).
2. **Write phase** — answers deduplicated requests from the fetched
   values; caches every fetched real object; evicts the cache back down to
   ``C``, writing each evicted object back under its *new* id
   ``prf(k, ts'_k)``; re-encrypts and rewrites the ``f_D`` dummies under
   their new ids.  Every round therefore reads exactly ``B`` ids and
   writes exactly ``B`` ids.

Two deliberate deviations from the pseudocode-as-printed, both discussed
in the paper's prose:

* Algorithm 1 line 10 as printed would enqueue a server fetch even for a
  write whose key is cached — but a cached key has no server copy (an
  object "either only resides in the cache or at the server", Challenge 4),
  so the fetch would fail; cache-hit writes are served purely locally.
* the "background thread" that deletes read ids runs synchronously here
  ("deleting these objects has no security implications", §6.2).

Small-cache regime: Algorithm 1 assumes ``C >= B - f_D + R``.  Below
that (the paper's "re-write the objects fetched" fallback, §6.2) a
write-miss key can be evicted back to the server before its fetched
server copy is processed; the stale copy is then discarded rather than
resurrected, so such rounds write slightly fewer than ``B`` objects.
In the standard regime every round writes exactly ``B``.

Insert/delete support (§6.2 end) swaps dummy objects for real objects and
vice versa; see :mod:`repro.core.mutations`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.obs import OBS

from repro.core.batch import ClientRequest, ClientResponse
from repro.core.config import WaffleConfig
from repro.core.mutations import MutationQueue
from repro.core.timestamp_index import DummyObjectIndex, RealObjectIndex
from repro.crypto.keys import KeyChain
from repro.ds.lru import LruCache
from repro.errors import ConfigurationError, ProtocolError
from repro.storage.base import StorageBackend
from repro.workloads.trace import Operation

__all__ = ["RoundStats", "WaffleProxy"]

_DUMMY_PREFIX = "\x00dummy:"

#: Cache-miss sentinel for single-lookup reads (values may be any bytes).
_MISS = object()


@dataclass(slots=True)
class RoundStats:
    """Operation counts of one batch round, consumed by the cost model."""

    round: int
    requests: int = 0
    cache_hits: int = 0
    unique_real_reads: int = 0  # r
    fake_real_reads: int = 0  # f_R
    fake_dummy_reads: int = 0  # f_D actually issued
    server_reads: int = 0
    server_writes: int = 0
    server_deletes: int = 0
    prf_evals: int = 0
    decryptions: int = 0
    encryptions: int = 0
    cache_ops: int = 0
    index_ops: int = 0


@dataclass(slots=True)
class ProxyTotals:
    """Lifetime aggregates across all rounds."""

    rounds: int = 0
    requests: int = 0
    cache_hits: int = 0
    server_reads: int = 0
    server_writes: int = 0
    max_transient_cache: int = 0
    stats_by_round: list = field(default_factory=list)


class WaffleProxy:
    """Stateful trusted proxy executing Algorithm 1.

    Parameters
    ----------
    config:
        System parameters (Table 1).
    store:
        The untrusted server.  Wrap it in a
        :class:`~repro.storage.recording.RecordingStore` to capture the
        adversary's view; the proxy advances its round counter if present.
    keychain:
        Proxy-held secrets; defaults to a fresh random keychain.
    keep_round_stats:
        Retain per-round :class:`RoundStats` (benchmarks need them; long
        soak tests can disable to bound memory).
    """

    def __init__(self, config: WaffleConfig, store: StorageBackend,
                 keychain: KeyChain | None = None,
                 keep_round_stats: bool = True,
                 log_ids: bool = False) -> None:
        self.config = config
        self.store = store
        self.keychain = keychain if keychain is not None else KeyChain(
            backend=config.crypto_backend)
        self._rng = random.Random(config.seed)
        self.cache = LruCache(config.c)
        self.ts = 0
        self.totals = ProxyTotals()
        self._keep_round_stats = keep_round_stats
        self.mutations = MutationQueue()
        self._real_index: RealObjectIndex | None = None
        self._dummy_index: DummyObjectIndex | None = None
        self._initialized = False
        self._last_stats: RoundStats | None = None
        #: Optional storage-id provenance (sid -> plaintext key): the
        #: system-side ground truth the security analysis uses to measure
        #: beta, which the adversary cannot observe (§8.3.1).
        self.id_log: dict[str, str] | None = {} if log_ids else None

    # ------------------------------------------------------------------
    # initialization (§6.1)
    # ------------------------------------------------------------------
    def initialize(self, items: dict[str, bytes]) -> None:
        """Load the initial dataset: seed the cache, BSTs and the server."""
        if self._initialized:
            raise ProtocolError("proxy already initialized")
        if len(items) != self.config.n:
            raise ConfigurationError(
                f"expected N={self.config.n} items, got {len(items)}"
            )
        if any(key.startswith(_DUMMY_PREFIX) for key in items):
            raise ConfigurationError("client keys may not use the dummy prefix")

        cfg = self.config
        seed_base = self._rng.randrange(2**63)
        self._real_index = RealObjectIndex(items.keys(), seed=seed_base)
        dummy_keys = [f"{_DUMMY_PREFIX}{i:012d}" for i in range(cfg.d)]
        self._dummy_index = DummyObjectIndex(
            dummy_keys, seed=seed_base + 17,
            reshuffle=cfg.dummy_policy == "reshuffle",
        )

        # Randomly chosen cache seed of C real objects.
        all_keys = list(items.keys())
        self._rng.shuffle(all_keys)
        cached_keys = all_keys[: cfg.c]
        server_keys = all_keys[cfg.c:]
        for key in cached_keys:
            self.cache.put(key, items[key])

        # Remaining reals and all dummies, shuffled, encoded, loaded.  Ids
        # and ciphertexts are produced by the batched crypto kernels in one
        # pass each over the N - C + D outsourced objects.
        for key in server_keys:
            self._real_index.mark_server_resident(key)
        load_keys = server_keys + dummy_keys
        values = [items[key] for key in server_keys]
        values.extend(self._dummy_payload() for _ in dummy_keys)
        sids = self._encode_ids([(key, 0) for key in load_keys])
        outsourced = list(zip(sids, self.keychain.cipher.encrypt_many(values)))
        self._rng.shuffle(outsourced)
        self.store.multi_put(outsourced)
        self._initialized = True

    # ------------------------------------------------------------------
    # crypto helpers
    # ------------------------------------------------------------------
    def _encode_id(self, key: str, ts: int) -> str:
        sid = self.keychain.prf.derive(key, ts)
        if self.id_log is not None:
            self.id_log[sid] = key
        return sid

    def _encode_ids(self, pairs: list[tuple[str, int]]) -> list[str]:
        """Batched :meth:`_encode_id` over ``(key, timestamp)`` pairs."""
        sids = self.keychain.prf.derive_many(pairs)
        if self.id_log is not None:
            for sid, (key, _) in zip(sids, pairs):
                self.id_log[sid] = key
        return sids

    def _encrypt(self, value: bytes) -> bytes:
        return self.keychain.cipher.encrypt(value)

    def _decrypt(self, blob: bytes) -> bytes:
        return self.keychain.cipher.decrypt(blob)

    def _dummy_payload(self) -> bytes:
        return self._rng.randbytes(self.config.value_size)

    def _get_index(self, key: str) -> str:
        """GetIndex(k): prf(k, BST.getTimestamp(k))."""
        if key.startswith(_DUMMY_PREFIX):
            return self._encode_id(key, self._dummy_index.stored_timestamp(key))
        return self._encode_id(key, self._real_index.timestamp(key))

    def _is_dummy(self, key: str) -> bool:
        return key.startswith(_DUMMY_PREFIX)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def handle_batch(self, requests: list[ClientRequest]) -> list[ClientResponse]:
        """Process one batch of up to R client requests; returns responses."""
        if not self._initialized:
            raise ProtocolError("proxy not initialized")
        cfg = self.config
        if len(requests) > cfg.r:
            raise ProtocolError(
                f"batch carries {len(requests)} requests, R={cfg.r}"
            )
        real_index = self._real_index
        dummy_index = self._dummy_index
        self.ts += 1
        stats = RoundStats(round=self.ts, requests=len(requests))
        # Duck-typed so fault-injection and other wrappers stacked above a
        # RecordingStore can forward the round boundary.
        next_round = getattr(self.store, "next_round", None)
        if next_round is not None:
            next_round()
        # Observability: phase boundaries are perf_counter readings taken
        # only when enabled; the disabled path costs one branch per phase
        # (the zero-cost contract pinned by tests/test_obs_overhead.py).
        # Phases form a span tree under the round: open_span(root=True)
        # resets the thread's span stack, so a chaos-injected mid-round
        # exception cannot corrupt the parentage of later rounds.
        obs = OBS
        observing = obs.enabled
        if observing:
            _pc = time.perf_counter
            _round_tok = obs.open_span("round", root=True)
            _tok = obs.open_span("phase.plan")
            _t0 = _pc()

        cli_resp: dict[int, bytes] = {}
        dedup: dict[str, list[tuple[int, bool]]] = {}

        inserts, deletes = self.mutations.drain(
            insert_limit=min(cfg.f_d, len(dummy_index)),
            delete_limit=cfg.f_r_min,
        )

        # -------------------- read phase --------------------
        # Consecutive READ requests probe the cache through one bulk
        # get_if_present_many call (a pure READ run performs no cache
        # mutations, so batching the probes cannot reorder anything:
        # recency bumps land hit-by-hit in request order, exactly as the
        # scalar loop produced them).  WRITE requests mutate the cache
        # and therefore stay scalar, bounding each run at the next write.
        index = 0
        total = len(requests)
        while index < total:
            request = requests[index]
            if request.op is Operation.READ:
                run_end = index + 1
                while (run_end < total
                       and requests[run_end].op is Operation.READ):
                    run_end += 1
                run = requests[index:run_end]
                values = self.cache.get_if_present_many(
                    [req.key for req in run], _MISS)
                for req, value in zip(run, values):
                    key = req.key
                    if key not in real_index:
                        raise ProtocolError(
                            f"request for unknown key: {key!r}")
                    if value is not _MISS:
                        cli_resp[req.request_id] = value
                        stats.cache_hits += 1
                        stats.cache_ops += 1
                    else:
                        dedup.setdefault(key, []).append(
                            (req.request_id, True))
                index = run_end
            else:  # WRITE
                key = request.key
                if key not in real_index:
                    raise ProtocolError(f"request for unknown key: {key!r}")
                if key in self.cache:
                    self.cache.put(key, request.value)
                    stats.cache_hits += 1
                else:
                    dedup.setdefault(key, []).append((request.request_id, False))
                    self.cache.put(key, request.value)
                stats.cache_ops += 1
                cli_resp[request.request_id] = request.value
                index += 1

        read_batch: dict[str, str] = {}  # storage id -> plaintext key
        dedup_pairs = [(key, real_index.timestamp(key)) for key in dedup]
        for key in dedup:
            real_index.set_timestamp(key, self.ts)
            real_index.mark_cached(key)
        for sid, key in zip(self._encode_ids(dedup_pairs), dedup):
            read_batch[sid] = key
        stats.prf_evals += len(dedup)
        stats.index_ops += 2 * len(dedup)

        # Deleted server-resident keys are force-read this round so their
        # ids leave the server (they consume fake-real slots below).
        forced_reads: list[str] = []
        newborn_dummies: list[str] = []
        for key in deletes:
            if key in dedup:
                # The key is being fetched for a client in this very round;
                # retry the delete next round to keep the response correct.
                self.mutations.enqueue_delete(key)
                continue
            if key in self.cache:
                self.cache.remove(key)
                real_index.drop_key(key)
            else:
                forced_reads.append(key)
            newborn_dummies.append(self._new_dummy_key())

        # Fake queries on dummy objects (lines 20-23).  Retiring dummies
        # (freeing slots for inserts) are read but will not be rewritten.
        # The f_D least-recently-read dummies are detached from the
        # selection tree in one batched descent; ids derive from their
        # still-stored timestamps in one PRF pass.
        dummy_budget = min(cfg.f_d, len(dummy_index))
        dummy_sel = dummy_index.take_min_keys(dummy_budget)
        if len(inserts) > len(dummy_sel):
            raise ProtocolError("insert queue exceeded available dummy reads")
        dummy_pairs = [
            (key, dummy_index.stored_timestamp(key)) for key in dummy_sel
        ]
        for sid, key in zip(self._encode_ids(dummy_pairs), dummy_sel):
            read_batch[sid] = key
        retired_dummies = set(dummy_sel[: len(inserts)])
        for key in dummy_sel[: len(inserts)]:
            dummy_index.retire(key)
        dummy_index.record_access_many(dummy_sel[len(inserts):], self.ts)
        stats.prf_evals += len(dummy_sel)
        stats.index_ops += len(dummy_sel)
        stats.fake_dummy_reads += len(dummy_sel)
        for key, value in inserts:
            real_index.add_key(key, self.ts, server_resident=False)
            self.cache.put(key, value)
            stats.cache_ops += 1

        # Fake queries on real objects (lines 24-28): least-recently
        # accessed server-resident keys, preceded by any forced deletes.
        r = len(dedup)
        f_r = cfg.b - (r + stats.fake_dummy_reads)
        if f_r < 0:
            raise ProtocolError("batch overflow: r + f_D exceeds B")
        dropped_reads: set[str] = set()
        # Forced deletes consume fake-real slots first (the scalar loop
        # popped them from the end of the list, one per slot).
        forced_sel = [forced_reads.pop() for _ in range(min(len(forced_reads), f_r))]
        forced_pairs = [(key, real_index.timestamp(key)) for key in forced_sel]
        for sid, key in zip(self._encode_ids(forced_pairs), forced_sel):
            read_batch[sid] = key
            real_index.drop_key(key)
            dropped_reads.add(key)
        stats.prf_evals += len(forced_sel)
        stats.index_ops += len(forced_sel)

        remaining = f_r - len(forced_sel)
        if remaining and cfg.fake_real_policy == "least_recent":
            if remaining > real_index.server_resident_count:
                raise ProtocolError(
                    "no server-resident real objects left for fake queries; "
                    "N - C is too small for this configuration"
                )
            fake_pairs = real_index.pop_min_keys(remaining, self.ts)
            for sid, (key, _) in zip(self._encode_ids(fake_pairs), fake_pairs):
                read_batch[sid] = key
            stats.prf_evals += remaining
            stats.index_ops += 2 * remaining
        elif remaining:  # "uniform": the Challenge-2 ablation draws one
            for _ in range(remaining):  # rng value per pick, so stays scalar
                if real_index.server_resident_count == 0:
                    raise ProtocolError(
                        "no server-resident real objects left for fake queries; "
                        "N - C is too small for this configuration"
                    )
                key = real_index.random_resident_key(self._rng)
                read_batch[self._get_index(key)] = key
                real_index.set_timestamp(key, self.ts)
                real_index.mark_cached(key)
                stats.prf_evals += 1
                stats.index_ops += 2
        if forced_reads:
            raise ProtocolError("delete queue exceeded fake-real budget")
        stats.unique_real_reads = r
        stats.fake_real_reads = f_r
        if observing:
            _t1 = _pc()
            obs.close_span(_tok, _t1 - _t0,
                           labels={"system": "waffle"}, round=self.ts)
            _tok = obs.open_span("phase.server_io")

        # One pipelined read of B ids.  Their deletion (read-once ids) is
        # deferred into the end-of-round commit_round so that a crash
        # anywhere in the round leaves the server untouched by it — the
        # property snapshot-based failover recovery relies on.  The
        # adversary-visible trace is unchanged: reads, then deletes, then
        # writes, once per round.
        sids = sorted(read_batch)
        blobs = self.store.multi_get(sids)
        stats.server_reads = len(sids)
        stats.server_deletes = len(sids)
        if observing:
            _t2 = _pc()
            obs.close_span(_tok, _t2 - _t1,
                           labels={"system": "waffle", "dir": "read"},
                           round=self.ts, ids=len(sids))
            _tok = obs.open_span("phase.decrypt")

        # -------------------- write phase --------------------
        # "The algorithm first evicts an object from the cache before
        # adding a new object" (lines 37-41): interleaving eviction with
        # insertion keeps the transient cache at C + R, never C + B.
        #
        # Crypto is deferred: the loop plans (key, id_timestamp, plaintext)
        # triples in emission order, then one derive_many + encrypt_many
        # pass produces the actual write batch.  Dummy payloads are still
        # drawn at plan time so the proxy rng stream matches the scalar
        # path draw-for-draw (the recorded trace is identical).
        write_plan: list[tuple[str, int, bytes]] = []
        written_this_phase: set[str] = set()

        def evict_one() -> None:
            evicted_key, evicted_value = self.cache.evict()
            real_index.mark_server_resident(evicted_key)
            written_this_phase.add(evicted_key)
            write_plan.append(
                (evicted_key, real_index.timestamp(evicted_key), evicted_value)
            )
            stats.prf_evals += 1
            stats.encryptions += 1
            stats.cache_ops += 1
            stats.index_ops += 1

        # Every fetched real object decrypts in one batched kernel pass
        # (dummy payloads are random bytes and never inspected).
        real_positions = [
            pos for pos, sid in enumerate(sids)
            if not self._is_dummy(read_batch[sid])
        ]
        plaintexts = self.keychain.cipher.decrypt_many(
            [blobs[pos] for pos in real_positions]
        )
        decrypted = dict(zip(real_positions, plaintexts))
        stats.decryptions += len(real_positions)
        if observing:
            _t3 = _pc()
            obs.close_span(_tok, _t3 - _t2,
                           labels={"system": "waffle"}, round=self.ts,
                           values=len(real_positions))
            _tok = obs.open_span("phase.cache")

        for pos, sid in enumerate(sids):
            key = read_batch[sid]
            if self._is_dummy(key):
                if key in retired_dummies:
                    continue  # slot freed for an inserted real object
                write_plan.append(
                    (key, dummy_index.stored_timestamp(key), self._dummy_payload())
                )
                stats.prf_evals += 1
                stats.encryptions += 1
                continue
            value = decrypted[pos]
            if key in dropped_reads:
                continue  # deleted key: fetched only to clear its id
            for request_id, need_resp in dedup.get(key, ()):
                if need_resp:
                    cli_resp[request_id] = value
            if key in written_this_phase:
                # A write-miss key whose (newer) cached value was already
                # evicted back to the server earlier in this phase; do not
                # resurrect the stale fetched copy.
                continue
            if not self.cache.touch_if_present(key):
                # touch_if_present: a hit means the key was written this
                # batch and the cached value wins; recency still bumps.
                if len(self.cache) >= cfg.c:
                    evict_one()
                self.cache.put(key, value)
            stats.cache_ops += 1

        for key in newborn_dummies:
            dummy_index.swap_in(key, self.ts)
            write_plan.append((key, self.ts, self._dummy_payload()))
            stats.prf_evals += 1
            stats.encryptions += 1

        self.totals.max_transient_cache = max(
            self.totals.max_transient_cache, len(self.cache)
        )
        if observing:
            _t4 = _pc()
            obs.close_span(_tok, _t4 - _t3,
                           labels={"system": "waffle"}, round=self.ts)
            _tok = obs.open_span("phase.evict")
        # Drain the write-miss overage (the C + R transient) back to C.
        while self.cache.over_capacity():
            evict_one()
        if observing:
            _t5 = _pc()
            obs.close_span(_tok, _t5 - _t4,
                           labels={"system": "waffle"}, round=self.ts)
            _tok = obs.open_span("phase.derive")

        write_ids, ciphertexts = self.keychain.seal_many(
            [(key, ts) for key, ts, _ in write_plan],
            [value for _, _, value in write_plan],
        )
        if self.id_log is not None:
            for sid, (key, _, _) in zip(write_ids, write_plan):
                self.id_log[sid] = key
        write_batch = list(zip(write_ids, ciphertexts))
        if observing:
            _t6 = _pc()
            obs.close_span(_tok, _t6 - _t5,
                           labels={"system": "waffle"}, round=self.ts,
                           writes=len(write_batch))
            _tok = obs.open_span("phase.server_io")
        self.store.commit_round(sids, write_batch)
        stats.server_writes = len(write_batch)
        dummy_index.end_round(self.ts)
        if observing:
            _t7 = _pc()
            obs.close_span(_tok, _t7 - _t6,
                           labels={"system": "waffle", "dir": "write"},
                           round=self.ts, ids=len(write_batch))

        # -------------------- bookkeeping --------------------
        totals = self.totals
        totals.rounds += 1
        totals.requests += stats.requests
        totals.cache_hits += stats.cache_hits
        totals.server_reads += stats.server_reads
        totals.server_writes += stats.server_writes
        if self._keep_round_stats:
            totals.stats_by_round.append(stats)
        self._last_stats = stats

        if observing:
            labels = {"system": "waffle"}
            reg = obs.registry
            reg.counter("rounds.total", **labels).inc()
            reg.counter("requests.total", **labels).inc(stats.requests)
            reg.counter("cache.hits.total", **labels).inc(stats.cache_hits)
            reg.counter("server.reads.total", **labels).inc(stats.server_reads)
            reg.counter("server.writes.total", **labels).inc(stats.server_writes)
            reg.counter("batch.real.total", **labels).inc(stats.unique_real_reads)
            reg.counter("batch.fake_real.total", **labels).inc(stats.fake_real_reads)
            reg.counter("batch.fake_dummy.total", **labels).inc(stats.fake_dummy_reads)
            reg.gauge("cache.size", **labels).set(len(self.cache))
            obs.close_span(_round_tok, _pc() - _t0, labels=labels,
                           round=self.ts, requests=stats.requests,
                           real=stats.unique_real_reads,
                           fake_real=stats.fake_real_reads,
                           fake_dummy=stats.fake_dummy_reads,
                           cache_hits=stats.cache_hits)

        return [
            ClientResponse(request_id=request.request_id, key=request.key,
                           value=cli_resp[request.request_id])
            for request in requests
        ]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def last_stats(self) -> RoundStats:
        return self._last_stats

    @property
    def real_count(self) -> int:
        """Current N (changes under inserts/deletes)."""
        return len(self._real_index) if self._real_index else 0

    @property
    def dummy_count(self) -> int:
        """Current D (changes under inserts/deletes)."""
        return len(self._dummy_index) if self._dummy_index else 0

    def contains_key(self, key: str) -> bool:
        return self._real_index is not None and key in self._real_index

    def _new_dummy_key(self) -> str:
        return f"{_DUMMY_PREFIX}n{self._rng.randrange(2**63):015x}"
