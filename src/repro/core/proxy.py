"""The Waffle proxy: Algorithm 1 plus initialization (§6).

The proxy is the trusted, stateful component.  Per batch round it:

1. **Read phase** — serves cache hits locally; deduplicates misses;
   appends ``f_D`` fake queries on dummy objects and
   ``f_R = B - (r + f_D)`` fake queries on least-recently-accessed real
   objects; derives each storage id as ``prf(k, ts_k)`` *before* bumping
   ``ts_k`` to the current round; reads the ``B`` ids in one pipelined
   batch and then deletes them (each id is read at most once, Challenge 4).
2. **Write phase** — answers deduplicated requests from the fetched
   values; caches every fetched real object; evicts the cache back down to
   ``C``, writing each evicted object back under its *new* id
   ``prf(k, ts'_k)``; re-encrypts and rewrites the ``f_D`` dummies under
   their new ids.  Every round therefore reads exactly ``B`` ids and
   writes exactly ``B`` ids.

Two deliberate deviations from the pseudocode-as-printed, both discussed
in the paper's prose:

* Algorithm 1 line 10 as printed would enqueue a server fetch even for a
  write whose key is cached — but a cached key has no server copy (an
  object "either only resides in the cache or at the server", Challenge 4),
  so the fetch would fail; cache-hit writes are served purely locally.
* the "background thread" that deletes read ids runs synchronously here
  ("deleting these objects has no security implications", §6.2).

Small-cache regime: Algorithm 1 assumes ``C >= B - f_D + R``.  Below
that (the paper's "re-write the objects fetched" fallback, §6.2) a
write-miss key can be evicted back to the server before its fetched
server copy is processed; the stale copy is then discarded rather than
resurrected, so such rounds write slightly fewer than ``B`` objects.
In the standard regime every round writes exactly ``B``.

Insert/delete support (§6.2 end) swaps dummy objects for real objects and
vice versa; see :mod:`repro.core.mutations`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.batch import ClientRequest, ClientResponse
from repro.core.config import WaffleConfig
from repro.core.mutations import MutationQueue
from repro.core.timestamp_index import DummyObjectIndex, RealObjectIndex
from repro.crypto.keys import KeyChain
from repro.ds.lru import LruCache
from repro.errors import ConfigurationError, ProtocolError
from repro.storage.base import StorageBackend
from repro.storage.recording import RecordingStore
from repro.workloads.trace import Operation

__all__ = ["RoundStats", "WaffleProxy"]

_DUMMY_PREFIX = "\x00dummy:"


@dataclass(slots=True)
class RoundStats:
    """Operation counts of one batch round, consumed by the cost model."""

    round: int
    requests: int = 0
    cache_hits: int = 0
    unique_real_reads: int = 0  # r
    fake_real_reads: int = 0  # f_R
    fake_dummy_reads: int = 0  # f_D actually issued
    server_reads: int = 0
    server_writes: int = 0
    server_deletes: int = 0
    prf_evals: int = 0
    decryptions: int = 0
    encryptions: int = 0
    cache_ops: int = 0
    index_ops: int = 0


@dataclass(slots=True)
class ProxyTotals:
    """Lifetime aggregates across all rounds."""

    rounds: int = 0
    requests: int = 0
    cache_hits: int = 0
    server_reads: int = 0
    server_writes: int = 0
    max_transient_cache: int = 0
    stats_by_round: list = field(default_factory=list)


class WaffleProxy:
    """Stateful trusted proxy executing Algorithm 1.

    Parameters
    ----------
    config:
        System parameters (Table 1).
    store:
        The untrusted server.  Wrap it in a
        :class:`~repro.storage.recording.RecordingStore` to capture the
        adversary's view; the proxy advances its round counter if present.
    keychain:
        Proxy-held secrets; defaults to a fresh random keychain.
    keep_round_stats:
        Retain per-round :class:`RoundStats` (benchmarks need them; long
        soak tests can disable to bound memory).
    """

    def __init__(self, config: WaffleConfig, store: StorageBackend,
                 keychain: KeyChain | None = None,
                 keep_round_stats: bool = True,
                 log_ids: bool = False) -> None:
        self.config = config
        self.store = store
        self.keychain = keychain if keychain is not None else KeyChain()
        self._rng = random.Random(config.seed)
        self.cache = LruCache(config.c)
        self.ts = 0
        self.totals = ProxyTotals()
        self._keep_round_stats = keep_round_stats
        self.mutations = MutationQueue()
        self._real_index: RealObjectIndex | None = None
        self._dummy_index: DummyObjectIndex | None = None
        self._initialized = False
        self._last_stats: RoundStats | None = None
        #: Optional storage-id provenance (sid -> plaintext key): the
        #: system-side ground truth the security analysis uses to measure
        #: beta, which the adversary cannot observe (§8.3.1).
        self.id_log: dict[str, str] | None = {} if log_ids else None

    # ------------------------------------------------------------------
    # initialization (§6.1)
    # ------------------------------------------------------------------
    def initialize(self, items: dict[str, bytes]) -> None:
        """Load the initial dataset: seed the cache, BSTs and the server."""
        if self._initialized:
            raise ProtocolError("proxy already initialized")
        if len(items) != self.config.n:
            raise ConfigurationError(
                f"expected N={self.config.n} items, got {len(items)}"
            )
        if any(key.startswith(_DUMMY_PREFIX) for key in items):
            raise ConfigurationError("client keys may not use the dummy prefix")

        cfg = self.config
        seed_base = self._rng.randrange(2**63)
        self._real_index = RealObjectIndex(items.keys(), seed=seed_base)
        dummy_keys = [f"{_DUMMY_PREFIX}{i:012d}" for i in range(cfg.d)]
        self._dummy_index = DummyObjectIndex(
            dummy_keys, seed=seed_base + 17,
            reshuffle=cfg.dummy_policy == "reshuffle",
        )

        # Randomly chosen cache seed of C real objects.
        all_keys = list(items.keys())
        self._rng.shuffle(all_keys)
        cached_keys = all_keys[: cfg.c]
        server_keys = all_keys[cfg.c:]
        for key in cached_keys:
            self.cache.put(key, items[key])

        # Remaining reals and all dummies, shuffled, encoded, loaded.
        outsourced: list[tuple[str, bytes]] = []
        for key in server_keys:
            self._real_index.mark_server_resident(key)
            outsourced.append((self._encode_id(key, 0), self._encrypt(items[key])))
        for key in dummy_keys:
            outsourced.append((self._encode_id(key, 0), self._encrypt(self._dummy_payload())))
        self._rng.shuffle(outsourced)
        self.store.multi_put(outsourced)
        self._initialized = True

    # ------------------------------------------------------------------
    # crypto helpers
    # ------------------------------------------------------------------
    def _encode_id(self, key: str, ts: int) -> str:
        sid = self.keychain.prf.derive(key, ts)
        if self.id_log is not None:
            self.id_log[sid] = key
        return sid

    def _encrypt(self, value: bytes) -> bytes:
        return self.keychain.cipher.encrypt(value)

    def _decrypt(self, blob: bytes) -> bytes:
        return self.keychain.cipher.decrypt(blob)

    def _dummy_payload(self) -> bytes:
        return self._rng.randbytes(self.config.value_size)

    def _get_index(self, key: str) -> str:
        """GetIndex(k): prf(k, BST.getTimestamp(k))."""
        if key.startswith(_DUMMY_PREFIX):
            return self._encode_id(key, self._dummy_index.stored_timestamp(key))
        return self._encode_id(key, self._real_index.timestamp(key))

    def _is_dummy(self, key: str) -> bool:
        return key.startswith(_DUMMY_PREFIX)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def handle_batch(self, requests: list[ClientRequest]) -> list[ClientResponse]:
        """Process one batch of up to R client requests; returns responses."""
        if not self._initialized:
            raise ProtocolError("proxy not initialized")
        cfg = self.config
        if len(requests) > cfg.r:
            raise ProtocolError(
                f"batch carries {len(requests)} requests, R={cfg.r}"
            )
        real_index = self._real_index
        dummy_index = self._dummy_index
        self.ts += 1
        stats = RoundStats(round=self.ts, requests=len(requests))
        recording = self.store if isinstance(self.store, RecordingStore) else None
        if recording is not None:
            recording.next_round()

        cli_resp: dict[int, bytes] = {}
        dedup: dict[str, list[tuple[int, bool]]] = {}

        inserts, deletes = self.mutations.drain(
            insert_limit=min(cfg.f_d, len(dummy_index)),
            delete_limit=cfg.f_r_min,
        )

        # -------------------- read phase --------------------
        for request in requests:
            key = request.key
            if key not in real_index:
                raise ProtocolError(f"request for unknown key: {key!r}")
            if request.op is Operation.READ:
                if key in self.cache:
                    cli_resp[request.request_id] = self.cache.get(key)
                    stats.cache_hits += 1
                    stats.cache_ops += 1
                else:
                    dedup.setdefault(key, []).append((request.request_id, True))
            else:  # WRITE
                if key in self.cache:
                    self.cache.put(key, request.value)
                    stats.cache_hits += 1
                else:
                    dedup.setdefault(key, []).append((request.request_id, False))
                    self.cache.put(key, request.value)
                stats.cache_ops += 1
                cli_resp[request.request_id] = request.value

        read_batch: dict[str, str] = {}  # storage id -> plaintext key
        for key in dedup:
            read_batch[self._get_index(key)] = key
            real_index.set_timestamp(key, self.ts)
            real_index.mark_cached(key)
            stats.prf_evals += 1
            stats.index_ops += 2

        # Deleted server-resident keys are force-read this round so their
        # ids leave the server (they consume fake-real slots below).
        forced_reads: list[str] = []
        newborn_dummies: list[str] = []
        for key in deletes:
            if key in dedup:
                # The key is being fetched for a client in this very round;
                # retry the delete next round to keep the response correct.
                self.mutations.enqueue_delete(key)
                continue
            if key in self.cache:
                self.cache.remove(key)
                real_index.drop_key(key)
            else:
                forced_reads.append(key)
            newborn_dummies.append(self._new_dummy_key())

        # Fake queries on dummy objects (lines 20-23).  Retiring dummies
        # (freeing slots for inserts) are read but will not be rewritten.
        retired_dummies: set[str] = set()
        dummy_budget = min(cfg.f_d, len(dummy_index))
        for i in range(dummy_budget):
            key = dummy_index.min_timestamp_key()
            read_batch[self._get_index(key)] = key
            stats.prf_evals += 1
            if i < len(inserts):
                dummy_index.swap_out(key)
                retired_dummies.add(key)
            else:
                dummy_index.record_access(key, self.ts)
            stats.index_ops += 1
            stats.fake_dummy_reads += 1
        if len(inserts) > len(retired_dummies):
            raise ProtocolError("insert queue exceeded available dummy reads")
        for key, value in inserts:
            real_index.add_key(key, self.ts, server_resident=False)
            self.cache.put(key, value)
            stats.cache_ops += 1

        # Fake queries on real objects (lines 24-28): least-recently
        # accessed server-resident keys, preceded by any forced deletes.
        r = len(dedup)
        f_r = cfg.b - (r + stats.fake_dummy_reads)
        if f_r < 0:
            raise ProtocolError("batch overflow: r + f_D exceeds B")
        dropped_reads: set[str] = set()
        for i in range(f_r):
            if forced_reads:
                key = forced_reads.pop()
                read_batch[self._get_index(key)] = key
                real_index.drop_key(key)
                dropped_reads.add(key)
                stats.prf_evals += 1
                stats.index_ops += 1
                continue
            if real_index.server_resident_count == 0:
                raise ProtocolError(
                    "no server-resident real objects left for fake queries; "
                    "N - C is too small for this configuration"
                )
            if cfg.fake_real_policy == "least_recent":
                key = real_index.min_timestamp_key()
            else:  # "uniform": the Challenge-2 ablation
                key = real_index.random_resident_key(self._rng)
            read_batch[self._get_index(key)] = key
            real_index.set_timestamp(key, self.ts)
            real_index.mark_cached(key)
            stats.prf_evals += 1
            stats.index_ops += 2
        if forced_reads:
            raise ProtocolError("delete queue exceeded fake-real budget")
        stats.unique_real_reads = r
        stats.fake_real_reads = f_r

        # One pipelined read of B ids, then delete them (read-once ids).
        sids = sorted(read_batch)
        blobs = self.store.multi_get(sids)
        self.store.multi_delete(sids)
        stats.server_reads = len(sids)
        stats.server_deletes = len(sids)

        # -------------------- write phase --------------------
        # "The algorithm first evicts an object from the cache before
        # adding a new object" (lines 37-41): interleaving eviction with
        # insertion keeps the transient cache at C + R, never C + B.
        write_batch: list[tuple[str, bytes]] = []
        written_this_phase: set[str] = set()

        def evict_one() -> None:
            evicted_key, evicted_value = self.cache.evict()
            real_index.mark_server_resident(evicted_key)
            written_this_phase.add(evicted_key)
            write_batch.append(
                (self._get_index(evicted_key), self._encrypt(evicted_value))
            )
            stats.prf_evals += 1
            stats.encryptions += 1
            stats.cache_ops += 1
            stats.index_ops += 1

        for sid, blob in zip(sids, blobs):
            key = read_batch[sid]
            if self._is_dummy(key):
                if key in retired_dummies:
                    continue  # slot freed for an inserted real object
                write_batch.append(
                    (self._get_index(key), self._encrypt(self._dummy_payload()))
                )
                stats.prf_evals += 1
                stats.encryptions += 1
                continue
            value = self._decrypt(blob)
            stats.decryptions += 1
            if key in dropped_reads:
                continue  # deleted key: fetched only to clear its id
            for request_id, need_resp in dedup.get(key, ()):
                if need_resp:
                    cli_resp[request_id] = value
            if key in written_this_phase:
                # A write-miss key whose (newer) cached value was already
                # evicted back to the server earlier in this phase; do not
                # resurrect the stale fetched copy.
                continue
            if key in self.cache:
                self.cache.touch(key)  # written this batch; cache value wins
            else:
                if len(self.cache) >= cfg.c:
                    evict_one()
                self.cache.put(key, value)
            stats.cache_ops += 1

        for key in newborn_dummies:
            dummy_index.swap_in(key, self.ts)
            write_batch.append(
                (self._get_index(key), self._encrypt(self._dummy_payload()))
            )
            stats.prf_evals += 1
            stats.encryptions += 1

        self.totals.max_transient_cache = max(
            self.totals.max_transient_cache, len(self.cache)
        )
        # Drain the write-miss overage (the C + R transient) back to C.
        while self.cache.over_capacity():
            evict_one()

        self.store.multi_put(write_batch)
        stats.server_writes = len(write_batch)
        dummy_index.end_round(self.ts)

        # -------------------- bookkeeping --------------------
        totals = self.totals
        totals.rounds += 1
        totals.requests += stats.requests
        totals.cache_hits += stats.cache_hits
        totals.server_reads += stats.server_reads
        totals.server_writes += stats.server_writes
        if self._keep_round_stats:
            totals.stats_by_round.append(stats)
        self._last_stats = stats

        return [
            ClientResponse(request_id=request.request_id, key=request.key,
                           value=cli_resp[request.request_id])
            for request in requests
        ]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def last_stats(self) -> RoundStats:
        return self._last_stats

    @property
    def real_count(self) -> int:
        """Current N (changes under inserts/deletes)."""
        return len(self._real_index) if self._real_index else 0

    @property
    def dummy_count(self) -> int:
        """Current D (changes under inserts/deletes)."""
        return len(self._dummy_index) if self._dummy_index else 0

    def contains_key(self, key: str) -> bool:
        return self._real_index is not None and key in self._real_index

    def _new_dummy_key(self) -> str:
        return f"{_DUMMY_PREFIX}n{self._rng.randrange(2**63):015x}"
