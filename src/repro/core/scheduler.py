"""Time-based batch scheduling: bounding the wait for R requests.

Algorithm 1 "waits to receive R client requests before creating a
batch" (§4, Challenge 1).  Under light load that wait is unbounded, so a
deployed proxy needs a flush deadline.  :class:`BatchScheduler` wraps a
:class:`~repro.core.client.WaffleClient` with a simulated-clock deadline:
a batch dispatches when either R requests have accumulated or the oldest
buffered request has waited ``max_delay_s``.

Security note (documented, inherent): timeout dispatches reveal *when*
traffic is light — a batch of mostly-fake queries fires on the deadline.
The batch is still shape-identical (B reads/B writes of rotating ids),
so the α/β guarantees are untouched; what leaks is the arrival-rate
envelope, which the paper's model already concedes to the adversary
(it observes request timing).  Operators trade tail latency against
fake-query overhead with ``max_delay_s``.
"""

from __future__ import annotations

from repro.core.client import PendingResult, WaffleClient
from repro.core.datastore import WaffleDatastore
from repro.errors import ConfigurationError
from repro.sim.clock import SimClock

__all__ = ["BatchScheduler"]


class BatchScheduler:
    """Deadline-driven batching over a Waffle datastore.

    Parameters
    ----------
    datastore:
        The deployment to drive.
    clock:
        The simulated clock the deadline is measured on.
    max_delay_s:
        Oldest-request age that forces a flush.
    """

    def __init__(self, datastore: WaffleDatastore, clock: SimClock,
                 max_delay_s: float) -> None:
        if max_delay_s <= 0:
            raise ConfigurationError("max_delay_s must be positive")
        self._client = WaffleClient(datastore)
        self._clock = clock
        self.max_delay_s = max_delay_s
        self._oldest_arrival: float | None = None
        self.timeout_flushes = 0
        self.full_flushes = 0

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def get(self, key: str) -> PendingResult:
        return self._submit("get", key, None)

    def put(self, key: str, value: bytes) -> PendingResult:
        return self._submit("put", key, value)

    def _submit(self, kind: str, key: str,
                value: bytes | None) -> PendingResult:
        if self._oldest_arrival is None:
            self._oldest_arrival = self._clock.now
        before = len(self._client)
        if kind == "get":
            result = self._client.get(key)
        else:
            result = self._client.put(key, value)
        if len(self._client) < before + 1:  # auto-flushed at R
            self.full_flushes += 1
            self._oldest_arrival = None
        return result

    def tick(self) -> int:
        """Advance scheduling: flush if the deadline passed.

        Call whenever the clock moves (an event loop would arm a timer).
        Returns the number of requests flushed (0 if no deadline hit).
        """
        if self._oldest_arrival is None:
            return 0
        if self._clock.now - self._oldest_arrival < self.max_delay_s:
            return 0
        flushed = self._client.flush()
        if flushed:
            self.timeout_flushes += 1
        self._oldest_arrival = None
        return flushed

    def flush(self) -> int:
        """Force-flush (shutdown path)."""
        flushed = self._client.flush()
        self._oldest_arrival = None
        return flushed

    @property
    def buffered(self) -> int:
        return len(self._client)
