"""Cryptographic substrate: PRFs, authenticated encryption, key management.

Waffle (§3.1) encodes every plaintext key ``k`` as ``prf(k, ts_k)`` — a
pseudo-random function of the key and its current access timestamp — and
encrypts values with an authenticated symmetric scheme ``E(v)``.  This
package provides both primitives using only the standard library
(:mod:`hashlib`/:mod:`hmac`), which keeps the reproduction dependency-free
while preserving the properties the protocol relies on: determinism of the
PRF, pseudo-randomness across distinct inputs, and tamper detection for
ciphertexts.
"""

from repro.crypto.aead import AuthenticatedCipher
from repro.crypto.backend import (
    available_backend_names,
    backend_names,
    get_backend,
    resolve_backend_name,
)
from repro.crypto.keys import KeyChain
from repro.crypto.prf import Prf

__all__ = [
    "AuthenticatedCipher",
    "KeyChain",
    "Prf",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "resolve_backend_name",
]
