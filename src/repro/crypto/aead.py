"""Authenticated encryption built from the standard library.

The environment offers no third-party crypto package, so we construct an
encrypt-then-MAC scheme from SHA-256:

* confidentiality: a per-message random nonce seeds a SHA-256 keystream
  (CTR-style: ``SHA256(enc_key || nonce || counter)``) XOR-ed with the
  plaintext;
* integrity: HMAC-SHA256 under an independent MAC key over
  ``nonce || ciphertext``; verification is constant-time.

This is the classical encrypt-then-MAC composition and gives exactly the
interface and properties Waffle's proxy needs from ``E(v)`` (§3.1):
randomized ciphertexts (re-encrypting the same value yields a fresh
ciphertext, so written-back objects are unlinkable) and tamper detection.
Ciphertext length depends only on plaintext length, matching the paper's
equal-length-values assumption.
"""

from __future__ import annotations

import hashlib
import hmac
import os

from repro.errors import IntegrityError

__all__ = ["AuthenticatedCipher"]

_NONCE_LEN = 16
_TAG_LEN = 32
_BLOCK_LEN = 32  # SHA-256 output size drives the keystream block size


class AuthenticatedCipher:
    """Encrypt-then-MAC authenticated symmetric cipher.

    Parameters
    ----------
    enc_key:
        Key for the keystream.
    mac_key:
        Independent key for the HMAC tag.
    rng:
        Optional ``random.Random``-like object with ``randbytes``; supplied
        by tests for deterministic nonces.  Defaults to ``os.urandom``.
    """

    __slots__ = ("_enc_key", "_mac_key", "_randbytes")

    def __init__(self, enc_key: bytes, mac_key: bytes, rng=None) -> None:
        if not enc_key or not mac_key:
            raise ValueError("cipher keys must be non-empty")
        if enc_key == mac_key:
            raise ValueError("encryption and MAC keys must be independent")
        self._enc_key = bytes(enc_key)
        self._mac_key = bytes(mac_key)
        self._randbytes = rng.randbytes if rng is not None else os.urandom

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK_LEN - 1) // _BLOCK_LEN):
            block_input = self._enc_key + nonce + counter.to_bytes(8, "big")
            blocks.append(hashlib.sha256(block_input).digest())
        return b"".join(blocks)[:length]

    def encrypt(self, plaintext: bytes) -> bytes:
        """Return ``nonce || ciphertext || tag`` for ``plaintext``."""
        nonce = self._randbytes(_NONCE_LEN)
        stream = self._keystream(nonce, len(plaintext))
        body = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = hmac.new(self._mac_key, nonce + body, hashlib.sha256).digest()
        return nonce + body + tag

    def decrypt(self, blob: bytes) -> bytes:
        """Verify and decrypt ``blob``; raise :class:`IntegrityError` on tamper."""
        if len(blob) < _NONCE_LEN + _TAG_LEN:
            raise IntegrityError("ciphertext too short")
        nonce = blob[:_NONCE_LEN]
        body = blob[_NONCE_LEN:-_TAG_LEN]
        tag = blob[-_TAG_LEN:]
        expected = hmac.new(self._mac_key, nonce + body, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("authentication tag mismatch")
        stream = self._keystream(nonce, len(body))
        return bytes(c ^ s for c, s in zip(body, stream))

    def ciphertext_overhead(self) -> int:
        """Bytes added to every plaintext (nonce + tag)."""
        return _NONCE_LEN + _TAG_LEN
