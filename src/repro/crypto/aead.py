"""Authenticated encryption built from the standard library.

The environment offers no third-party crypto package, so we construct an
encrypt-then-MAC scheme from SHA-256:

* confidentiality: a per-message random nonce seeds a SHA-256 keystream
  (CTR-style: ``SHA256(enc_key || nonce || counter)``) XOR-ed with the
  plaintext;
* integrity: HMAC-SHA256 under an independent MAC key over
  ``nonce || ciphertext``; verification is constant-time.

This is the classical encrypt-then-MAC composition and gives exactly the
interface and properties Waffle's proxy needs from ``E(v)`` (§3.1):
randomized ciphertexts (re-encrypting the same value yields a fresh
ciphertext, so written-back objects are unlinkable) and tamper detection.
Ciphertext length depends only on plaintext length, matching the paper's
equal-length-values assumption.

Hot path: every batch round encrypts and decrypts ``~B`` values of
``value_size`` bytes, so the kernels avoid per-byte Python:

* the keystream XOR is one big-int XOR (``int.from_bytes ^ int.from_bytes``)
  instead of a byte-at-a-time generator;
* the keystream's ``enc_key`` prefix is absorbed into a SHA-256 state once
  per cipher and the ``enc_key || nonce`` prefix once per message, with
  ``.copy()`` per counter block;
* the MAC's keyed state is precomputed once and ``.copy()``-ed per message.

All three transformations are bit-compatible with the naive forms (pinned
by the known-answer tests), so ciphertexts written by older builds still
decrypt.  :meth:`encrypt_many`/:meth:`decrypt_many` amortize per-call
dispatch across a whole batch.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import time
from typing import Callable, Iterable, Protocol, Sequence

from repro.errors import IntegrityError
from repro.obs import OBS

try:  # vectorized XOR when available; the big-int path needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

__all__ = ["AuthenticatedCipher", "RandomSource"]


class RandomSource(Protocol):
    """Nonce entropy source: anything with ``random.Random``'s ``randbytes``."""

    def randbytes(self, n: int) -> bytes: ...

_NONCE_LEN = 16
_TAG_LEN = 32
_BLOCK_LEN = 32  # SHA-256 output size drives the keystream block size

#: Big-int XOR wins below this length (numpy's fixed call overhead), the
#: vectorized byte XOR above it.
_NP_XOR_CUTOFF = 128

#: Lazily grown table of pre-encoded keystream counters (shared: counter
#: encoding is key/nonce independent).
_COUNTER_BYTES: list[bytes] = [i.to_bytes(8, "big") for i in range(64)]


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings without a per-byte Python loop."""
    if _np is not None and len(data) >= _NP_XOR_CUTOFF:
        return (
            _np.frombuffer(data, dtype=_np.uint8)
            ^ _np.frombuffer(stream, dtype=_np.uint8)
        ).tobytes()
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(len(data), "big")


def _counters(count: int) -> list[bytes]:
    while len(_COUNTER_BYTES) < count:
        _COUNTER_BYTES.append(len(_COUNTER_BYTES).to_bytes(8, "big"))
    return _COUNTER_BYTES[:count]


class AuthenticatedCipher:
    """Encrypt-then-MAC authenticated symmetric cipher.

    Parameters
    ----------
    enc_key:
        Key for the keystream.
    mac_key:
        Independent key for the HMAC tag.
    rng:
        Optional ``random.Random``-like object with ``randbytes``; supplied
        by tests for deterministic nonces.  Defaults to ``os.urandom``.
    """

    __slots__ = ("_enc_key", "_mac_key", "_randbytes", "_stream_root", "_mac_keyed")

    #: Registry name of the implementation (native subclasses override;
    #: see :mod:`repro.crypto.backend`).  All backends are byte-identical.
    backend_name = "pure"

    def __init__(self, enc_key: bytes, mac_key: bytes,
                 rng: RandomSource | None = None) -> None:
        if not enc_key or not mac_key:
            raise ValueError("cipher keys must be non-empty")
        if enc_key == mac_key:
            raise ValueError("encryption and MAC keys must be independent")
        self._enc_key = bytes(enc_key)
        self._mac_key = bytes(mac_key)
        self._randbytes = rng.randbytes if rng is not None else os.urandom
        # SHA-256 state with enc_key already absorbed; copied per message.
        self._stream_root = hashlib.sha256(self._enc_key)
        # Keyed-but-empty HMAC state; copied per message (skips re-keying).
        self._mac_keyed = hmac.new(self._mac_key, None, hashlib.sha256)

    def __getstate__(self) -> tuple[bytes, bytes, Callable[[int], bytes]]:
        # The cached digest states are C objects and cannot pickle; the
        # keys fully determine them (checkpoint shipping, ha/).
        return self._enc_key, self._mac_key, self._randbytes

    def __setstate__(self, state: tuple[bytes, bytes,
                                        Callable[[int], bytes]]) -> None:
        self._enc_key, self._mac_key, self._randbytes = state
        self._stream_root = hashlib.sha256(self._enc_key)
        self._mac_keyed = hmac.new(self._mac_key, None, hashlib.sha256)

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        if length <= 0:
            return b""
        prefix = self._stream_root.copy()
        prefix.update(nonce)
        copy = prefix.copy
        blocks = []
        append = blocks.append
        for counter in _counters((length + _BLOCK_LEN - 1) // _BLOCK_LEN):
            block = copy()
            block.update(counter)
            append(block.digest())
        stream = b"".join(blocks)
        return stream if len(stream) == length else stream[:length]

    def _tag(self, nonce: bytes, body: bytes) -> bytes:
        mac = self._mac_keyed.copy()
        mac.update(nonce)
        mac.update(body)
        return mac.digest()

    def encrypt(self, plaintext: bytes) -> bytes:
        """Return ``nonce || ciphertext || tag`` for ``plaintext``."""
        nonce = self._randbytes(_NONCE_LEN)
        body = _xor_bytes(plaintext, self._keystream(nonce, len(plaintext)))
        return nonce + body + self._tag(nonce, body)

    def decrypt(self, blob: bytes) -> bytes:
        """Verify and decrypt ``blob``; raise :class:`IntegrityError` on tamper."""
        if len(blob) < _NONCE_LEN + _TAG_LEN:
            raise IntegrityError("ciphertext too short")
        nonce = blob[:_NONCE_LEN]
        body = blob[_NONCE_LEN:-_TAG_LEN]
        tag = blob[-_TAG_LEN:]
        if not hmac.compare_digest(tag, self._tag(nonce, body)):
            raise IntegrityError("authentication tag mismatch")
        return _xor_bytes(body, self._keystream(nonce, len(body)))

    def encrypt_many(self, plaintexts: Iterable[bytes]) -> list[bytes]:
        """Batched :meth:`encrypt`; blob ``i`` encrypts ``plaintexts[i]``.

        Nonces are drawn in input order, so under a deterministic rng the
        batch form is byte-identical to looping :meth:`encrypt`.
        """
        if OBS.enabled:
            start = time.perf_counter()
            out = self._encrypt_many(plaintexts)
            OBS.observe_kernel("aead.encrypt_many",
                               time.perf_counter() - start, len(out))
            return out
        return self._encrypt_many(plaintexts)

    def _encrypt_many(self, plaintexts: Iterable[bytes]) -> list[bytes]:
        randbytes = self._randbytes
        keystream = self._keystream
        tag = self._tag
        out = []
        append = out.append
        for plaintext in plaintexts:
            nonce = randbytes(_NONCE_LEN)
            body = _xor_bytes(plaintext, keystream(nonce, len(plaintext)))
            append(nonce + body + tag(nonce, body))
        return out

    def draw_nonces(self, count: int) -> list[bytes]:
        """Draw ``count`` nonces from this cipher's rng, in order.

        Split out of :meth:`encrypt_many` for the parallel engine: the
        coordinator draws all nonces serially (keeping the rng stream
        identical to inline execution draw-for-draw) and ships them to
        workers alongside the plaintexts.
        """
        randbytes = self._randbytes
        return [randbytes(_NONCE_LEN) for _ in range(count)]

    def encrypt_with_nonces(self, plaintexts: Sequence[bytes],
                            nonces: Sequence[bytes]) -> list[bytes]:
        """Batched encryption under caller-supplied nonces.

        ``encrypt_with_nonces(pts, draw_nonces(len(pts)))`` is
        byte-identical to :meth:`encrypt_many` on ``pts`` — the split
        lets the nonce draws happen on a coordinating thread while the
        keystream/MAC work runs on pool workers.
        """
        if len(plaintexts) != len(nonces):
            raise ValueError("plaintexts and nonces must pair up")
        keystream = self._keystream
        tag = self._tag
        out = []
        append = out.append
        for plaintext, nonce in zip(plaintexts, nonces):
            if len(nonce) != _NONCE_LEN:
                raise ValueError(f"nonces must be {_NONCE_LEN} bytes")
            body = _xor_bytes(plaintext, keystream(nonce, len(plaintext)))
            append(nonce + body + tag(nonce, body))
        return out

    def decrypt_many(self, blobs: Sequence[bytes]) -> list[bytes]:
        """Batched :meth:`decrypt`; raises on the first tampered blob."""
        if OBS.enabled:
            start = time.perf_counter()
            out = self._decrypt_many(blobs)
            OBS.observe_kernel("aead.decrypt_many",
                               time.perf_counter() - start, len(out))
            return out
        return self._decrypt_many(blobs)

    def _decrypt_many(self, blobs: Sequence[bytes]) -> list[bytes]:
        compare = hmac.compare_digest
        keystream = self._keystream
        tag = self._tag
        out = []
        append = out.append
        for blob in blobs:
            if len(blob) < _NONCE_LEN + _TAG_LEN:
                raise IntegrityError("ciphertext too short")
            nonce = blob[:_NONCE_LEN]
            body = blob[_NONCE_LEN:-_TAG_LEN]
            if not compare(blob[-_TAG_LEN:], tag(nonce, body)):
                raise IntegrityError("authentication tag mismatch")
            append(_xor_bytes(body, keystream(nonce, len(body))))
        return out

    def ciphertext_overhead(self) -> int:
        """Bytes added to every plaintext (nonce + tag)."""
        return _NONCE_LEN + _TAG_LEN
