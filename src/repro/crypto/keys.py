"""Key management for the trusted proxy.

The proxy owns all secrets (§3.1): the PRF key that derives storage ids and
the keys of the authenticated value cipher.  :class:`KeyChain` derives all
of them from one master secret with domain-separated HMAC so a single seed
reproduces an entire deployment — important for deterministic tests and for
replaying experiments.
"""

from __future__ import annotations

import hmac
import hashlib
import os

from repro.crypto.aead import RandomSource
from repro.crypto.backend import get_backend

__all__ = ["KeyChain"]


def _derive(master: bytes, label: bytes) -> bytes:
    return hmac.new(master, b"repro.keychain/" + label, hashlib.sha256).digest()


class KeyChain:
    """Derives every proxy secret from a single master key.

    Parameters
    ----------
    master:
        Master secret.  ``None`` draws a fresh random secret.
    rng:
        Optional deterministic RNG forwarded to the value cipher (tests).
    backend:
        Crypto backend name (see :mod:`repro.crypto.backend`); ``None``
        defers to ``REPRO_CRYPTO_BACKEND`` / ``pure``.  Every backend is
        byte-identical, so the choice never affects derived ids,
        ciphertexts, or checkpoint replay.
    """

    __slots__ = ("_master", "prf", "cipher")

    def __init__(self, master: bytes | None = None,
                 rng: RandomSource | None = None,
                 backend: str | None = None) -> None:
        self._master = bytes(master) if master is not None else os.urandom(32)
        if not self._master:
            raise ValueError("master key must be non-empty")
        kernels = get_backend(backend)
        self.prf = kernels.make_prf(_derive(self._master, b"prf"))
        self.cipher = kernels.make_cipher(
            enc_key=_derive(self._master, b"enc"),
            mac_key=_derive(self._master, b"mac"),
            rng=rng,
        )

    @classmethod
    def from_seed(cls, seed: int,
                  rng: RandomSource | None = None,
                  backend: str | None = None) -> "KeyChain":
        """Deterministic keychain for reproducible experiments."""
        return cls(seed.to_bytes(16, "big", signed=True), rng=rng,
                   backend=backend)

    def seal_many(self, pairs: list[tuple[str, int]],
                  values: list[bytes]) -> tuple[list[str], list[bytes]]:
        """Derive storage ids for ``pairs`` and encrypt ``values``.

        The proxy's write phase funnels through this single entry point
        so that alternative kernel sets (scalar references, pooled
        parallel kernels) slot in by swapping ``prf``/``cipher`` without
        touching the protocol code.  Output order matches input order;
        nonce draws happen in ``values`` order, exactly as separate
        ``derive_many`` + ``encrypt_many`` calls would.
        """
        return self.prf.derive_many(pairs), self.cipher.encrypt_many(values)
