"""Pseudo-random function used to derive storage identifiers.

Waffle derives the storage identifier of a plaintext key ``k`` as
``prf(k || ts)`` where ``ts`` is the key's access timestamp (§5).  The PRF
must be deterministic for equal inputs and indistinguishable from random
across distinct inputs; HMAC-SHA256 under a secret key satisfies both.

Storage identifiers are rendered as fixed-width hex strings so that every
identifier has identical length — the server learns nothing from id sizes.
"""

from __future__ import annotations

import hmac
import hashlib

__all__ = ["Prf"]

#: Number of hex characters kept from the HMAC output.  128 bits is far
#: beyond birthday-collision range for any dataset this library handles.
_DIGEST_HEX_LEN = 32


class Prf:
    """Keyed pseudo-random function ``(key, timestamp) -> storage id``.

    Parameters
    ----------
    secret:
        The PRF secret.  Two instances built from equal secrets produce
        identical outputs, which lets tests replay derivations.
    """

    __slots__ = ("_secret",)

    def __init__(self, secret: bytes) -> None:
        if not secret:
            raise ValueError("PRF secret must be non-empty")
        self._secret = bytes(secret)

    def derive(self, key: str, timestamp: int) -> str:
        """Return the storage identifier for ``key`` at ``timestamp``.

        The timestamp is folded into the HMAC input with an unambiguous
        separator so that ``("k1", 2)`` and ("k12", ...) style prefix
        collisions cannot produce equal inputs.
        """
        message = key.encode("utf-8") + b"\x00" + str(int(timestamp)).encode()
        digest = hmac.new(self._secret, message, hashlib.sha256).hexdigest()
        return digest[:_DIGEST_HEX_LEN]

    def derive_bytes(self, data: bytes) -> bytes:
        """Raw HMAC over arbitrary bytes; used for subkey derivation."""
        return hmac.new(self._secret, data, hashlib.sha256).digest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Prf(secret=<{len(self._secret)} bytes>)"
