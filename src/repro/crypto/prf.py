"""Pseudo-random function used to derive storage identifiers.

Waffle derives the storage identifier of a plaintext key ``k`` as
``prf(k || ts)`` where ``ts`` is the key's access timestamp (§5).  The PRF
must be deterministic for equal inputs and indistinguishable from random
across distinct inputs; HMAC-SHA256 under a secret key satisfies both.

Storage identifiers are rendered as fixed-width hex strings so that every
identifier has identical length — the server learns nothing from id sizes.

Hot path: every batch round derives ``2B`` identifiers (B reads + B
writes), so the naive ``hmac.new(secret, msg)`` per call — which re-keys
the HMAC inner/outer pads every time — is measurable.  The keyed digest
state is instead computed once at construction and ``.copy()``-ed per
derivation, and :meth:`derive_many` amortizes the remaining per-call
dispatch across a whole batch.  Outputs are bit-identical to the naive
form (``hmac.copy`` resumes the exact same state), which the known-answer
tests pin.
"""

from __future__ import annotations

import hmac
import hashlib
import time
from typing import Iterable

from repro.obs import OBS

__all__ = ["Prf"]

#: Number of hex characters kept from the HMAC output.  128 bits is far
#: beyond birthday-collision range for any dataset this library handles.
_DIGEST_HEX_LEN = 32


class Prf:
    """Keyed pseudo-random function ``(key, timestamp) -> storage id``.

    Parameters
    ----------
    secret:
        The PRF secret.  Two instances built from equal secrets produce
        identical outputs, which lets tests replay derivations.
    """

    __slots__ = ("_secret", "_keyed")

    #: Registry name of the implementation (native subclasses override;
    #: see :mod:`repro.crypto.backend`).  All backends are byte-identical.
    backend_name = "pure"

    def __init__(self, secret: bytes) -> None:
        if not secret:
            raise ValueError("PRF secret must be non-empty")
        self._secret = bytes(secret)
        # Keyed-but-empty HMAC state: copying it restores the state right
        # after the inner pad was absorbed, skipping the re-keying work.
        self._keyed = hmac.new(self._secret, None, hashlib.sha256)

    def derive(self, key: str, timestamp: int) -> str:
        """Return the storage identifier for ``key`` at ``timestamp``.

        The timestamp is folded into the HMAC input with an unambiguous
        separator so that ``("k1", 2)`` and ("k12", ...) style prefix
        collisions cannot produce equal inputs.
        """
        mac = self._keyed.copy()
        mac.update(key.encode("utf-8") + b"\x00" + str(int(timestamp)).encode())
        return mac.hexdigest()[:_DIGEST_HEX_LEN]

    def derive_many(self, pairs: Iterable[tuple[str, int]]) -> list[str]:
        """Batched :meth:`derive` over ``(key, timestamp)`` pairs.

        Output ``i`` equals ``derive(*pairs[i])`` exactly; the batch form
        only hoists attribute lookups out of the per-item loop.
        """
        if OBS.enabled:
            start = time.perf_counter()
            out = self._derive_many(pairs)
            OBS.observe_kernel("prf.derive_many",
                               time.perf_counter() - start, len(out))
            return out
        return self._derive_many(pairs)

    def _derive_many(self, pairs: Iterable[tuple[str, int]]) -> list[str]:
        keyed = self._keyed
        cut = _DIGEST_HEX_LEN
        out = []
        append = out.append
        for key, timestamp in pairs:
            mac = keyed.copy()
            mac.update(key.encode("utf-8") + b"\x00" + str(int(timestamp)).encode())
            append(mac.hexdigest()[:cut])
        return out

    def __getstate__(self) -> bytes:
        # The cached HMAC state is a C object and cannot pickle; the
        # secret fully determines it (checkpoint shipping, ha/).
        return self._secret

    def __setstate__(self, state: bytes) -> None:
        self.__init__(state)

    def derive_bytes(self, data: bytes) -> bytes:
        """Raw HMAC over arbitrary bytes; used for subkey derivation."""
        mac = self._keyed.copy()
        mac.update(data)
        return mac.digest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Prf(secret=<{len(self._secret)} bytes>)"
