"""Pluggable crypto backends behind the ``Prf``/``AuthenticatedCipher`` surface.

The kernel interface the rest of the system consumes is fixed:
HMAC-SHA256 storage-id derivation (:class:`~repro.crypto.prf.Prf`) and the
SHA256-CTR + HMAC-SHA256 encrypt-then-MAC value cipher
(:class:`~repro.crypto.aead.AuthenticatedCipher`).  This module makes the
*implementation* of those kernels pluggable: a registry of named backends
each producing kernels that are **byte-identical** to the pure-Python
reference — same storage ids, same ciphertext layout, same tag-failure
behaviour — so swapping a backend can never perturb the adversary-visible
trace, stored ciphertexts, or checkpoint replay.

Three backends:

* ``pure`` — the :mod:`hashlib`/:mod:`hmac` implementation that has been
  here since the seed.  Always available; it is the reference oracle the
  known-answer parity tests hold every other backend to.
* ``openssl`` — the same scheme computed through the ``cryptography``
  package's OpenSSL EVP primitives (the pattern of SNIPPETS.md Snippet 1,
  which seals external-store records with a wheel-provided AEAD rather
  than hand-rolled Python).
* ``nacl`` — the same scheme over PyNaCl's libsodium SHA-256 binding,
  with HMAC built from the standard ipad/opad construction (libsodium's
  ``crypto_auth`` is keyed differently, so composing from the bare hash
  is what keeps the bytes identical).

Because CPython's ``hashlib`` is itself OpenSSL-backed, the native
backends buy pluggability and an escape hatch for environments with
hardware-accelerated providers more than a guaranteed speedup; the
benchmark suite labels every run with its backend so the claim stays
measured, never assumed.

Selection: :func:`get_backend` resolves an explicit name, else the
``REPRO_CRYPTO_BACKEND`` environment variable, else ``pure``.  ``auto``
picks the first available of ``openssl``, ``nacl``, ``pure``.  A known
backend whose wheel is absent falls back to ``pure`` (byte-identical, so
always safe) with a warning and a ``crypto.backend.fallbacks.total``
metric; pass ``strict=True`` to raise instead.  Native imports live only
in this module — oblint's OBL305 keeps them out of every other layer.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Callable, Iterable

from repro.crypto.aead import AuthenticatedCipher, RandomSource
from repro.crypto.aead import _counters as _keystream_counters
from repro.crypto.prf import _DIGEST_HEX_LEN, Prf
from repro.errors import ConfigurationError
from repro.obs import OBS

__all__ = [
    "AUTO_BACKEND",
    "CryptoBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "make_cipher",
    "make_prf",
    "resolve_backend_name",
]

#: Environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_CRYPTO_BACKEND"

DEFAULT_BACKEND = "pure"
AUTO_BACKEND = "auto"

#: Registry order; ``auto`` prefers native backends over ``pure``.
_NAMES: tuple[str, ...] = ("pure", "nacl", "openssl")
_AUTO_ORDER: tuple[str, ...] = ("openssl", "nacl", "pure")

_SHA256_BLOCK = 64


class CryptoBackend:
    """One registered backend: named factories for the two kernels.

    Instances are immutable descriptors; ``available`` is probed once at
    first lookup (import success of the native wheel) and cached.
    """

    __slots__ = ("name", "available", "reason", "_prf", "_cipher")

    def __init__(self, name: str, available: bool, reason: str | None,
                 prf: Callable[[bytes], Prf] | None,
                 cipher: Callable[[bytes, bytes, RandomSource | None],
                                  AuthenticatedCipher] | None) -> None:
        self.name = name
        self.available = available
        self.reason = reason
        self._prf = prf
        self._cipher = cipher

    def make_prf(self, secret: bytes) -> Prf:
        """Construct this backend's PRF kernel (byte-identical to pure)."""
        if self._prf is None:
            raise ConfigurationError(
                f"crypto backend {self.name!r} unavailable: {self.reason}")
        return self._prf(secret)

    def make_cipher(self, enc_key: bytes, mac_key: bytes,
                    rng: RandomSource | None = None) -> AuthenticatedCipher:
        """Construct this backend's AEAD kernel (byte-identical to pure)."""
        if self._cipher is None:
            raise ConfigurationError(
                f"crypto backend {self.name!r} unavailable: {self.reason}")
        return self._cipher(enc_key, mac_key, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "available" if self.available else f"unavailable: {self.reason}"
        return f"CryptoBackend({self.name!r}, {state})"


# ----------------------------------------------------------------------
# module-level factories (the kernels' __reduce__ targets: a checkpoint
# taken with a native backend must restore on a box without the wheel,
# falling back to the byte-identical pure kernel)
# ----------------------------------------------------------------------
def make_prf(backend: str, secret: bytes) -> Prf:
    """Build ``backend``'s PRF, falling back to ``pure`` if absent."""
    return get_backend(backend).make_prf(secret)


def make_cipher(backend: str, enc_key: bytes, mac_key: bytes,
                randbytes: Callable[[int], bytes] | None = None
                ) -> AuthenticatedCipher:
    """Build ``backend``'s cipher, falling back to ``pure`` if absent.

    ``randbytes`` restores the nonce source captured by ``__getstate__``
    (checkpoint round-trips must keep consuming the same rng stream).
    """
    cipher = get_backend(backend).make_cipher(enc_key, mac_key, rng=None)
    if randbytes is not None:
        cipher._randbytes = randbytes
    return cipher


def _hmac_pads(key: bytes) -> tuple[bytes, bytes]:
    """RFC 2104 inner/outer pad keys for a SHA-256 HMAC of ``key``."""
    import hashlib

    if len(key) > _SHA256_BLOCK:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_SHA256_BLOCK, b"\x00")
    return (bytes(b ^ 0x36 for b in key), bytes(b ^ 0x5C for b in key))


# ----------------------------------------------------------------------
# backend constructors (native imports stay inside these probes; the
# classes close over the imported modules, and pickling always routes
# through make_prf/make_cipher so function-local classes are safe)
# ----------------------------------------------------------------------
def _build_pure() -> CryptoBackend:
    def prf(secret: bytes) -> Prf:
        return Prf(secret)

    def cipher(enc_key: bytes, mac_key: bytes,
               rng: RandomSource | None) -> AuthenticatedCipher:
        return AuthenticatedCipher(enc_key, mac_key, rng=rng)

    return CryptoBackend("pure", True, None, prf, cipher)


def _build_openssl() -> CryptoBackend:
    try:
        from cryptography.hazmat.primitives import hashes as c_hashes
        from cryptography.hazmat.primitives import hmac as c_hmac
    except ImportError as error:
        return CryptoBackend("openssl", False, str(error), None, None)

    class OpensslPrf(Prf):
        """HMAC-SHA256 PRF over OpenSSL EVP; bytes equal to pure."""

        __slots__ = ("_native",)

        backend_name = "openssl"

        def __init__(self, secret: bytes) -> None:
            super().__init__(secret)
            self._native = c_hmac.HMAC(self._secret, c_hashes.SHA256())

        def derive(self, key: str, timestamp: int) -> str:
            mac = self._native.copy()
            mac.update(
                key.encode("utf-8") + b"\x00" + str(int(timestamp)).encode())
            return mac.finalize().hex()[:_DIGEST_HEX_LEN]

        def derive_bytes(self, data: bytes) -> bytes:
            mac = self._native.copy()
            mac.update(data)
            return mac.finalize()

        def _derive_many(self,
                         pairs: Iterable[tuple[str, int]]) -> list[str]:
            keyed = self._native
            cut = _DIGEST_HEX_LEN
            out = []
            append = out.append
            for key, timestamp in pairs:
                mac = keyed.copy()
                mac.update(key.encode("utf-8") + b"\x00"
                           + str(int(timestamp)).encode())
                append(mac.finalize().hex()[:cut])
            return out

        def __reduce__(self) -> tuple[object, ...]:
            return (make_prf, (self.backend_name, self._secret))

    class OpensslCipher(AuthenticatedCipher):
        """SHA256-CTR + HMAC-SHA256 over OpenSSL EVP; bytes equal to pure."""

        __slots__ = ("_native_root", "_native_mac")

        backend_name = "openssl"

        def __init__(self, enc_key: bytes, mac_key: bytes,
                     rng: RandomSource | None = None) -> None:
            super().__init__(enc_key, mac_key, rng=rng)
            self._init_native()

        def _init_native(self) -> None:
            root = c_hashes.Hash(c_hashes.SHA256())
            root.update(self._enc_key)
            self._native_root = root
            self._native_mac = c_hmac.HMAC(self._mac_key, c_hashes.SHA256())

        def _keystream(self, nonce: bytes, length: int) -> bytes:
            if length <= 0:
                return b""
            prefix = self._native_root.copy()
            prefix.update(nonce)
            copy = prefix.copy
            blocks = []
            append = blocks.append
            for counter in _keystream_counters((length + 31) // 32):
                block = copy()
                block.update(counter)
                append(block.finalize())
            stream = b"".join(blocks)
            return stream if len(stream) == length else stream[:length]

        def _tag(self, nonce: bytes, body: bytes) -> bytes:
            mac = self._native_mac.copy()
            mac.update(nonce)
            mac.update(body)
            return mac.finalize()

        def __setstate__(self, state: tuple[bytes, bytes,
                                            Callable[[int], bytes]]) -> None:
            super().__setstate__(state)
            self._init_native()

        def __reduce__(self) -> tuple[object, ...]:
            return (make_cipher, (self.backend_name, self._enc_key,
                                  self._mac_key, self._randbytes))

    def prf(secret: bytes) -> Prf:
        return OpensslPrf(secret)

    def cipher(enc_key: bytes, mac_key: bytes,
               rng: RandomSource | None) -> AuthenticatedCipher:
        return OpensslCipher(enc_key, mac_key, rng=rng)

    return CryptoBackend("openssl", True, None, prf, cipher)


def _build_nacl() -> CryptoBackend:
    try:
        from nacl.bindings import crypto_hash_sha256
    except ImportError as error:
        return CryptoBackend("nacl", False, str(error), None, None)

    class NaclPrf(Prf):
        """HMAC-SHA256 PRF composed from libsodium SHA-256.

        libsodium has no arbitrary-key HMAC-SHA256 entry point with the
        incremental-copy shape the pure kernel uses, so the RFC 2104
        composition is applied directly — two native hashes per
        derivation, byte-identical output.
        """

        __slots__ = ("_ipad", "_opad")

        backend_name = "nacl"

        def __init__(self, secret: bytes) -> None:
            super().__init__(secret)
            self._ipad, self._opad = _hmac_pads(self._secret)

        def derive_bytes(self, data: bytes) -> bytes:
            inner = crypto_hash_sha256(self._ipad + bytes(data))
            return crypto_hash_sha256(self._opad + inner)

        def derive(self, key: str, timestamp: int) -> str:
            message = (key.encode("utf-8") + b"\x00"
                       + str(int(timestamp)).encode())
            return self.derive_bytes(message).hex()[:_DIGEST_HEX_LEN]

        def _derive_many(self,
                         pairs: Iterable[tuple[str, int]]) -> list[str]:
            ipad = self._ipad
            opad = self._opad
            sha = crypto_hash_sha256
            cut = _DIGEST_HEX_LEN
            out = []
            append = out.append
            for key, timestamp in pairs:
                message = (key.encode("utf-8") + b"\x00"
                           + str(int(timestamp)).encode())
                append(sha(opad + sha(ipad + message)).hex()[:cut])
            return out

        def __reduce__(self) -> tuple[object, ...]:
            return (make_prf, (self.backend_name, self._secret))

    class NaclCipher(AuthenticatedCipher):
        """SHA256-CTR + HMAC-SHA256 over libsodium; bytes equal to pure."""

        __slots__ = ("_stream_prefix", "_mac_ipad", "_mac_opad")

        backend_name = "nacl"

        def __init__(self, enc_key: bytes, mac_key: bytes,
                     rng: RandomSource | None = None) -> None:
            super().__init__(enc_key, mac_key, rng=rng)
            self._init_native()

        def _init_native(self) -> None:
            self._stream_prefix = self._enc_key
            self._mac_ipad, self._mac_opad = _hmac_pads(self._mac_key)

        def _keystream(self, nonce: bytes, length: int) -> bytes:
            if length <= 0:
                return b""
            prefix = self._stream_prefix + bytes(nonce)
            sha = crypto_hash_sha256
            blocks = []
            append = blocks.append
            for counter in _keystream_counters((length + 31) // 32):
                append(sha(prefix + counter))
            stream = b"".join(blocks)
            return stream if len(stream) == length else stream[:length]

        def _tag(self, nonce: bytes, body: bytes) -> bytes:
            sha = crypto_hash_sha256
            inner = sha(self._mac_ipad + bytes(nonce) + bytes(body))
            return sha(self._mac_opad + inner)

        def __setstate__(self, state: tuple[bytes, bytes,
                                            Callable[[int], bytes]]) -> None:
            super().__setstate__(state)
            self._init_native()

        def __reduce__(self) -> tuple[object, ...]:
            return (make_cipher, (self.backend_name, self._enc_key,
                                  self._mac_key, self._randbytes))

    def prf(secret: bytes) -> Prf:
        return NaclPrf(secret)

    def cipher(enc_key: bytes, mac_key: bytes,
               rng: RandomSource | None) -> AuthenticatedCipher:
        return NaclCipher(enc_key, mac_key, rng=rng)

    return CryptoBackend("nacl", True, None, prf, cipher)


_BUILDERS: dict[str, Callable[[], CryptoBackend]] = {
    "pure": _build_pure,
    "openssl": _build_openssl,
    "nacl": _build_nacl,
}

_REGISTRY: dict[str, CryptoBackend] = {}
_REGISTRY_LOCK = threading.Lock()
_WARNED: set[str] = set()


def _load(name: str) -> CryptoBackend:
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
        if backend is None:
            backend = _REGISTRY[name] = _BUILDERS[name]()
        return backend


# ----------------------------------------------------------------------
# public resolution API
# ----------------------------------------------------------------------
def backend_names() -> tuple[str, ...]:
    """Every registered backend name, in registry order."""
    return _NAMES


def available_backend_names() -> tuple[str, ...]:
    """Names whose wheels import on this interpreter (always has pure)."""
    return tuple(name for name in _NAMES if _load(name).available)


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve a request (explicit, env, or default) to a registry name.

    ``auto`` resolves to the first *available* of openssl, nacl, pure.
    Unknown names raise :class:`ConfigurationError` — misspelling a
    backend must never silently run a different one.
    """
    requested = name if name is not None else os.environ.get(
        ENV_VAR, DEFAULT_BACKEND)
    requested = requested.strip().lower() or DEFAULT_BACKEND
    if requested == AUTO_BACKEND:
        for candidate in _AUTO_ORDER:
            if _load(candidate).available:
                return candidate
        return DEFAULT_BACKEND
    if requested not in _NAMES:
        raise ConfigurationError(
            f"unknown crypto backend {requested!r}; "
            f"choose from {', '.join(_NAMES)} or {AUTO_BACKEND!r}")
    return requested


def get_backend(name: str | None = None, strict: bool = False
                ) -> CryptoBackend:
    """The backend for ``name`` (or env/default), ready to build kernels.

    A known backend whose native wheel is missing falls back to ``pure``
    — every backend is byte-identical, so the fallback changes wall
    clock, never bytes.  ``strict=True`` raises instead (CI's
    native-crypto job uses it so a broken wheel fails loudly).
    """
    resolved = resolve_backend_name(name)
    backend = _load(resolved)
    if backend.available:
        return backend
    if strict:
        raise ConfigurationError(
            f"crypto backend {resolved!r} unavailable: {backend.reason}")
    if resolved not in _WARNED:
        _WARNED.add(resolved)
        warnings.warn(
            f"crypto backend {resolved!r} unavailable "
            f"({backend.reason}); falling back to byte-identical "
            f"{DEFAULT_BACKEND!r}", RuntimeWarning, stacklevel=2)
    if OBS.enabled:
        OBS.registry.counter("crypto.backend.fallbacks.total",
                             requested=resolved).inc()
    return _load(DEFAULT_BACKEND)
