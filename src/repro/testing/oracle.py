"""The differential oracle: what a chaos episode must satisfy.

A chaos run produces three artifacts — the client-visible responses, the
adversary-visible trace (:class:`~repro.storage.recording.AccessRecord`
list) and the per-attempt bookkeeping (:class:`Attempt`) — and this
module turns them into pass/fail judgments:

* **KV semantics** — the runner compares every response against an
  insecure in-order model as it executes (read-your-writes within a
  batch, durability across failovers); mismatches arrive here as
  ``semantics`` violations.
* **Replay-prefix obliviousness** — a proxy that fails over mid-round
  replays the round deterministically, so everything the adversary saw
  of an aborted attempt must be an exact ``(op, storage_id)`` prefix of
  the successful retry (:func:`check_replay_prefix`).  A retry therefore
  reveals only *that* a failure occurred — never *which objects* beyond
  what the round would have leaked anyway.
* **Constant batch composition** — every committed round is exactly B
  reads of B distinct ids, the deletion of those same ids in the same
  order, then exactly B writes (:func:`check_batch_shape`); fake-real
  and fake-dummy padding survives adversity.
* **Id lifecycle and α/β uniformity** — on the *collapsed* trace
  (:func:`collapse_trace`: aborted attempts dropped, committed rounds
  renumbered) the write-once/read-once/delete-after-read lifecycle must
  hold and the observed α/β must respect Theorems 7.1/7.2 under the
  episode's worst-case N and D (mutations move both).

The collapse step encodes the security argument precisely: an aborted
attempt's reads are re-issued verbatim by the retry (checked by the
prefix invariant), so the adversary's extra knowledge from the failure
is the duplicate read burst itself — the same ids, not new ones.  The
uniformity guarantees are stated over committed rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.uniformity import (
    UniformityReport,
    full_report,
    verify_storage_invariants,
)
from repro.core.config import WaffleConfig
from repro.errors import ProtocolError
from repro.storage.recording import AccessRecord

__all__ = [
    "Attempt",
    "Violation",
    "check_batch_shape",
    "check_replay_prefix",
    "check_timing_channel",
    "check_uniformity",
    "collapse_trace",
]


@dataclass(frozen=True, slots=True)
class Violation:
    """One invariant breach found by the oracle.

    ``kind`` is one of: ``semantics`` (response differs from the
    insecure model), ``crash`` (a non-injected exception escaped),
    ``unrecoverable`` (retries exhausted), ``replay`` (aborted attempt
    not a prefix of its retry), ``shape`` (batch composition broken),
    ``lifecycle`` (write-once/read-once violated), ``alpha`` / ``beta``
    (uniformity bound exceeded), ``timing`` (shaped round schedule
    leaks as much as — or more than — the on-fill schedule).
    """

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


@dataclass(slots=True)
class Attempt:
    """One execution attempt of one episode batch.

    ``start_seq``/``end_seq`` delimit the attempt's records in the
    recorder (``records[start_seq:end_seq]``); the recorder's seq
    counter is append-only, so slices never shift.
    """

    batch_index: int
    attempt_index: int
    start_seq: int
    end_seq: int
    ok: bool
    error: str | None = None


def check_replay_prefix(records: list[AccessRecord],
                        attempts: list[Attempt]) -> list[Violation]:
    """Every aborted attempt must be a prefix of its batch's commit.

    Deterministic replay from the pre-batch snapshot re-derives the same
    storage ids in the same order, and all fault points fire before the
    server applies anything — so whatever the adversary observed of a
    failed attempt is re-observed, verbatim, at the start of the attempt
    that finally commits.  Batches that never committed (the episode
    aborted) are skipped; the runner reports those separately.
    """
    violations: list[Violation] = []
    committed: dict[int, Attempt] = {
        a.batch_index: a for a in attempts if a.ok
    }
    for attempt in attempts:
        if attempt.ok:
            continue
        winner = committed.get(attempt.batch_index)
        if winner is None:
            continue
        aborted = records[attempt.start_seq:attempt.end_seq]
        final = records[winner.start_seq:winner.end_seq]
        if len(aborted) > len(final):
            violations.append(Violation(
                "replay",
                f"batch {attempt.batch_index} attempt "
                f"{attempt.attempt_index} recorded {len(aborted)} accesses, "
                f"more than the committed attempt's {len(final)}"))
            continue
        for position, (a, b) in enumerate(zip(aborted, final)):
            if (a.op, a.storage_id) != (b.op, b.storage_id):
                violations.append(Violation(
                    "replay",
                    f"batch {attempt.batch_index} attempt "
                    f"{attempt.attempt_index} diverges from its replay at "
                    f"access {position}: {(a.op, a.storage_id)} != "
                    f"{(b.op, b.storage_id)}"))
                break
    return violations


def collapse_trace(records: list[AccessRecord], attempts: list[Attempt],
                   init_end_seq: int) -> list[AccessRecord]:
    """The trace of the run *as if* no attempt had ever failed.

    Keeps the initialization bulk-load (round 0) and each batch's
    committed attempt, renumbered to consecutive rounds in batch order
    with a fresh seq.  This is the trace the uniformity theorems govern;
    aborted attempts contribute nothing beyond what the prefix check
    already pinned to it.
    """
    collapsed = [
        AccessRecord(r.op, r.storage_id, 0, seq)
        for seq, r in enumerate(records[:init_end_seq])
    ]
    committed = sorted((a for a in attempts if a.ok),
                       key=lambda a: a.batch_index)
    seq = len(collapsed)
    for round_index, attempt in enumerate(committed, start=1):
        for record in records[attempt.start_seq:attempt.end_seq]:
            collapsed.append(
                AccessRecord(record.op, record.storage_id, round_index, seq))
            seq += 1
    return collapsed


def check_batch_shape(collapsed: list[AccessRecord],
                      b: int) -> list[Violation]:
    """Each committed round: B reads, the same B ids deleted, B writes.

    This is Waffle's constant batch composition — the property that
    makes every round look identical to the adversary regardless of the
    real/fake mix, the mutation traffic, or how many retries preceded
    the commit.
    """
    violations: list[Violation] = []
    rounds: dict[int, list[AccessRecord]] = {}
    for record in collapsed:
        if record.round > 0:
            rounds.setdefault(record.round, []).append(record)
    for round_index in sorted(rounds):
        burst = rounds[round_index]
        ops = "".join(record.op[0] for record in burst)  # r/d/w string
        expected = "r" * b + "d" * b + "w" * b
        if ops != expected:
            violations.append(Violation(
                "shape",
                f"round {round_index} access pattern "
                f"{_summarize_ops(ops)} != {b}r {b}d {b}w"))
            continue
        read_ids = [record.storage_id for record in burst[:b]]
        delete_ids = [record.storage_id for record in burst[b:2 * b]]
        if read_ids != delete_ids:
            violations.append(Violation(
                "shape",
                f"round {round_index} deletes differ from its reads"))
        if len(set(read_ids)) != b:
            violations.append(Violation(
                "shape", f"round {round_index} re-read a storage id"))
    return violations


def _summarize_ops(ops: str) -> str:
    """Run-length encode an r/d/w op string for readable violations."""
    if not ops:
        return "(empty)"
    parts: list[str] = []
    current, count = ops[0], 0
    for op in ops:
        if op == current:
            count += 1
        else:
            parts.append(f"{count}{current}")
            current, count = op, 1
    parts.append(f"{count}{current}")
    return " ".join(parts)


def check_uniformity(collapsed: list[AccessRecord],
                     id_log: dict[str, str] | None,
                     config: WaffleConfig,
                     inserts_total: int = 0,
                     deletes_total: int = 0,
                     ) -> tuple[list[Violation], UniformityReport | None]:
    """Lifecycle plus α/β bounds on the collapsed trace.

    Mutations move the bounds: inserts grow N, deletes grow D.  The
    bounds are evaluated at the episode's worst case (initial N plus
    every insert, initial D plus every delete) — conservative, since α
    grows monotonically in both.
    """
    violations: list[Violation] = []
    try:
        verify_storage_invariants(collapsed)
    except ProtocolError as error:
        violations.append(Violation("lifecycle", str(error)))
        return violations, None
    bounds_cfg = replace(config, n=config.n + inserts_total,
                         d=config.d + deletes_total)
    alpha_bound = bounds_cfg.alpha_bound_effective()
    beta_bound = bounds_cfg.beta_bound()
    report = full_report(collapsed, id_log)
    if report.max_alpha is not None and report.max_alpha > alpha_bound:
        violations.append(Violation(
            "alpha",
            f"observed max alpha {report.max_alpha} exceeds bound "
            f"{alpha_bound}"))
    if report.min_beta is not None and report.min_beta < beta_bound:
        violations.append(Violation(
            "beta",
            f"observed min beta {report.min_beta} below bound "
            f"{beta_bound}"))
    return violations, report


def check_timing_channel(benchmark: dict,
                         max_shaped_score: float = 0.35) -> list[Violation]:
    """The timing-side-channel property over a benchmark report.

    Takes the output of
    :func:`repro.analysis.timing.timing_attack_benchmark` and asserts
    what round-schedule shaping must deliver: the fixed-interval
    schedule leaks strictly less than the on-fill schedule, and its
    absolute leakage score stays under ``max_shaped_score`` (the
    attacks' residual noise floor — a shaped schedule that still hands
    the adversary a third of the signal is not shaped).
    """
    violations: list[Violation] = []
    on_fill = benchmark["on_fill"]["leakage_score"]
    fixed = benchmark["fixed"]["leakage_score"]
    if fixed >= on_fill:
        violations.append(Violation(
            "timing",
            f"shaped schedule leaks {fixed:.3f} >= on-fill {on_fill:.3f} "
            f"(seed {benchmark.get('seed')})"))
    if fixed > max_shaped_score:
        violations.append(Violation(
            "timing",
            f"shaped schedule leakage {fixed:.3f} exceeds the "
            f"{max_shaped_score} noise ceiling (seed "
            f"{benchmark.get('seed')})"))
    return violations
