"""Deterministic fault injection for chaos conformance testing.

Waffle's proxy is the single trusted component; §3.1 assumes it is made
fault-tolerant with standard replication, and :mod:`repro.ha` implements
exactly that.  This module supplies the *adversity*: seeded, perfectly
reproducible failures injected into the storage path so the chaos
harness (:mod:`repro.testing.runner`) can prove that correctness and
obliviousness survive them.

Fault model
-----------
All injected faults fire **at the client stub, before the operation
reaches the server** — modelling a connection that cannot be established,
a request that times out on send, or a reply frame that arrives
truncated.  The faulted operation therefore has *no server-visible
effect*: the server state and the adversary-visible trace contain only
operations that genuinely completed.  This is the fault model under
which snapshot-based proxy recovery is sound — the recovered proxy
deterministically replays the aborted round and re-issues the same
storage ids (see ``repro.testing.oracle.check_replay_prefix``).

Every injected exception mixes in :class:`InjectedFault` so the harness
can tell planned adversity apart from genuine bugs: any *other*
exception escaping the system under test fails the episode.

:class:`FaultyStorage` injects per-operation faults from a
:class:`FaultPlan` (stateless: the next operation proceeds normally).
:class:`FaultyTransport` models a *stateful* connection: after an
injected drop, every subsequent operation fails with
:class:`~repro.errors.ConnectionDroppedError` until :meth:`reconnect`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import (
    BackendUnavailableError,
    ConfigurationError,
    ConnectionDroppedError,
    PartialReplyError,
    StorageTimeoutError,
)
from repro.storage.base import StorageBackend

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultyStorage",
    "FaultyTransport",
    "InjectedFault",
    "PassthroughStore",
]


class InjectedFault(Exception):
    """Mixin marking an exception as deliberately injected by a plan.

    Catchable on its own: the chaos runner handles ``except
    InjectedFault`` and treats any *other* exception as a genuine bug.
    """


class InjectedUnavailable(BackendUnavailableError, InjectedFault):
    """Injected per-op transient error (backend refused the request)."""


class InjectedTimeout(StorageTimeoutError, InjectedFault):
    """Injected timeout: the request may or may not have been sent.

    Under this module's fault model it was *not* sent (fail-fast on
    connect), so the server never saw it.
    """


class InjectedDrop(ConnectionDroppedError, InjectedFault):
    """Injected connection drop before the request hit the wire."""


class InjectedPartialReply(PartialReplyError, InjectedFault):
    """Injected short pipelined reply, detected at the framing layer."""


#: kind -> exception factory (op name, batch size -> exception).
_FAULT_FACTORIES = {
    "error": lambda op, size: InjectedUnavailable(
        f"injected backend error on {op}"),
    "timeout": lambda op, size: InjectedTimeout(
        f"injected timeout on {op}"),
    "drop": lambda op, size: InjectedDrop(
        f"injected connection drop on {op}"),
    "partial": lambda op, size: InjectedPartialReply(
        expected=size, got=max(0, size - 1)),
}

FAULT_KINDS = tuple(sorted(_FAULT_FACTORIES))


@dataclass
class FaultPlan:
    """A deterministic schedule of storage faults.

    Faults are keyed by the global storage-operation counter of the
    wrapper consuming the plan: the N-th batched operation (multi_get /
    multi_put / multi_delete each count as one) fails with the scheduled
    kind.  Keying by counter makes plans trivially serializable and
    shrinkable — dropping an entry removes exactly one failure.
    """

    #: storage-op index -> fault kind (one of :data:`FAULT_KINDS`).
    faults: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for index, kind in self.faults.items():
            if kind not in _FAULT_FACTORIES:
                raise ConfigurationError(f"unknown fault kind {kind!r}")
            if index < 0:
                raise ConfigurationError("fault indices must be >= 0")

    @classmethod
    def generate(cls, seed: int, horizon_ops: int,
                 rate: float = 0.05,
                 kinds: Sequence[str] = FAULT_KINDS) -> "FaultPlan":
        """Sample a plan: each op index in ``[0, horizon_ops)`` fails
        independently with probability ``rate``, kind chosen uniformly."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("fault rate must lie in [0, 1]")
        rng = random.Random(seed)
        faults = {
            index: rng.choice(list(kinds))
            for index in range(horizon_ops)
            if rng.random() < rate
        }
        return cls(faults=faults)

    def take(self, index: int) -> str | None:
        """The fault scheduled for op ``index``, if any."""
        return self.faults.get(index)

    def __len__(self) -> int:
        return len(self.faults)


class PassthroughStore(StorageBackend):
    """A storage wrapper that delegates everything to an inner backend.

    Base class for fault injectors and test mutators; also forwards
    ``next_round`` so a :class:`~repro.storage.recording.RecordingStore`
    anywhere below keeps its round counter in sync with the proxy.
    """

    def __init__(self, inner: StorageBackend) -> None:
        self._inner = inner

    @property
    def inner(self) -> StorageBackend:
        return self._inner

    def next_round(self) -> int | None:
        forward = getattr(self._inner, "next_round", None)
        return forward() if forward is not None else None

    def get(self, key: str) -> bytes:
        return self._inner.get(key)

    def put(self, key: str, value: bytes) -> None:
        self._inner.put(key, value)

    def delete(self, key: str) -> None:
        self._inner.delete(key)

    def __contains__(self, key: str) -> bool:
        return key in self._inner

    def __len__(self) -> int:
        return len(self._inner)

    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        return self._inner.multi_get(keys)

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        self._inner.multi_put(items)

    def multi_delete(self, keys: Sequence[str]) -> None:
        self._inner.multi_delete(keys)

    def commit_round(self, deletes: Sequence[str],
                     puts: Sequence[tuple[str, bytes]]) -> None:
        self._inner.commit_round(deletes, puts)


class FaultyStorage(PassthroughStore):
    """Client-side storage stub that fails operations per a fault plan.

    Only *operations* consume plan indices — ``__contains__``/``__len__``
    are introspection and never fault.  A faulted operation raises before
    delegating, so the inner backend (and any recorder below it) never
    observes it.
    """

    def __init__(self, inner: StorageBackend, plan: FaultPlan) -> None:
        super().__init__(inner)
        self.plan = plan
        #: Operations attempted so far (the plan's index space).
        self.ops = 0
        #: Faults actually raised, by kind (telemetry for sweep reports).
        self.injected: dict[str, int] = {}

    def _admit(self, op: str, size: int = 1) -> None:
        index = self.ops
        self.ops += 1
        kind = self.plan.take(index)
        if kind is not None:
            self.injected[kind] = self.injected.get(kind, 0) + 1
            raise _FAULT_FACTORIES[kind](op, size)

    def get(self, key: str) -> bytes:
        self._admit("get")
        return self._inner.get(key)

    def put(self, key: str, value: bytes) -> None:
        self._admit("put")
        self._inner.put(key, value)

    def delete(self, key: str) -> None:
        self._admit("delete")
        self._inner.delete(key)

    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        self._admit("multi_get", len(keys))
        return self._inner.multi_get(keys)

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        items = list(items)
        self._admit("multi_put", len(items))
        self._inner.multi_put(items)

    def multi_delete(self, keys: Sequence[str]) -> None:
        self._admit("multi_delete", len(keys))
        self._inner.multi_delete(keys)

    def commit_round(self, deletes: Sequence[str],
                     puts: Sequence[tuple[str, bytes]]) -> None:
        # One plan index for the whole commit: it either fails before the
        # server sees anything or applies in full (atomic fault point).
        self._admit("commit_round", len(deletes) + len(puts))
        self._inner.commit_round(deletes, puts)


class FaultyTransport(PassthroughStore):
    """A stateful faulty connection in front of a (possibly remote) store.

    Unlike :class:`FaultyStorage`, a ``drop`` is sticky: once the
    connection drops, every operation raises
    :class:`~repro.errors.ConnectionDroppedError` until the client calls
    :meth:`reconnect` — the shape real socket failures take in
    :class:`repro.net.client.RemoteStore`.
    """

    def __init__(self, inner: StorageBackend, plan: FaultPlan) -> None:
        super().__init__(inner)
        self.plan = plan
        self.ops = 0
        self.connected = True
        self.reconnects = 0

    def reconnect(self) -> None:
        self.connected = True
        self.reconnects += 1

    def _admit(self, op: str, size: int = 1) -> None:
        if not self.connected:
            raise InjectedDrop(f"connection is down (op {op})")
        index = self.ops
        self.ops += 1
        kind = self.plan.take(index)
        if kind == "drop":
            self.connected = False
        if kind is not None:
            raise _FAULT_FACTORIES[kind](op, size)

    def get(self, key: str) -> bytes:
        self._admit("get")
        return self._inner.get(key)

    def put(self, key: str, value: bytes) -> None:
        self._admit("put")
        self._inner.put(key, value)

    def delete(self, key: str) -> None:
        self._admit("delete")
        self._inner.delete(key)

    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        self._admit("multi_get", len(keys))
        return self._inner.multi_get(keys)

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        items = list(items)
        self._admit("multi_put", len(items))
        self._inner.multi_put(items)

    def multi_delete(self, keys: Sequence[str]) -> None:
        self._admit("multi_delete", len(keys))
        self._inner.multi_delete(keys)

    def commit_round(self, deletes: Sequence[str],
                     puts: Sequence[tuple[str, bytes]]) -> None:
        self._admit("commit_round", len(deletes) + len(puts))
        self._inner.commit_round(deletes, puts)
