"""Randomized chaos episodes: generation, validation, serialization.

An :class:`Episode` is a fully explicit description of one chaos run —
the Waffle configuration, the HA mode, the ordered list of client-level
operations (request batches, proxy crashes, standby failures, inserts,
deletes) and the :class:`~repro.testing.faults.FaultPlan` of storage
faults.  Episodes are:

* **deterministic** — the same episode always produces the same run,
  byte for byte (the proxy, the fault plan and the generator are all
  seeded);
* **serializable** — :meth:`Episode.to_json` /
  :meth:`Episode.from_json` round-trip through a plain-JSON reproducer
  file (``repro.cli chaos --replay``);
* **shrinkable** — operations and fault entries can be removed
  independently, and :meth:`Episode.validate` decides whether a mutated
  episode is still well-formed (the shrinker discards candidates that
  are not, e.g. a batch reading a key whose insert was shrunk away).

Validation mirrors the system's own rules: a key inserted via the
mutation path becomes readable only after the next executed batch (the
round that drains the mutation queue), a deleted key is never referenced
again, a crash discards mutations not yet made durable by a batch, and a
quorum group never falls below its batch-acknowledgement threshold.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import WaffleConfig
from repro.errors import ConfigurationError
from repro.testing.faults import FAULT_KINDS, FaultPlan
from repro.workloads.ycsb import key_name

__all__ = ["DEFAULT_CONFIG", "Episode", "chaos_config", "generate_episode"]

#: The standard chaos configuration: small enough that hundreds of
#: episodes run in CI-budget time, large enough that every mechanism is
#: exercised (cache misses, fake-real selection pressure, dummy epochs)
#: and the standard regime ``C >= B - f_D + R`` holds so every round
#: moves exactly B objects each way.  β = 1 here, so the β check is
#: non-vacuous.
DEFAULT_CONFIG = {
    "n": 96, "b": 12, "r": 4, "f_d": 3, "d": 24, "c": 28, "value_size": 48,
}


def chaos_config(seed: int, **overrides) -> WaffleConfig:
    """The episode's WaffleConfig (DEFAULT_CONFIG + overrides)."""
    params = dict(DEFAULT_CONFIG)
    params.update(overrides)
    return WaffleConfig(seed=seed, **params)


@dataclass
class Episode:
    """One deterministic chaos scenario.

    ``ops`` entries are plain dicts (JSON-shaped):

    * ``{"type": "batch", "requests": [["read", key] | ["write", key, value], ...]}``
    * ``{"type": "crash"}`` — primary dies at a batch boundary; failover.
    * ``{"type": "fail_standby", "standby": i}`` (quorum mode)
    * ``{"type": "restore_standby", "standby": i}`` (quorum mode)
    * ``{"type": "insert", "key": k, "value": v}`` — mutation path
    * ``{"type": "delete", "key": k}`` — mutation path

    Write/insert values are ASCII strings (encoded at run time).
    """

    seed: int
    ha_mode: str = "replicated"  # "replicated" | "quorum"
    standbys: int = 2
    quorum: int | None = None
    config: dict = field(default_factory=lambda: dict(DEFAULT_CONFIG))
    ops: list[dict] = field(default_factory=list)
    faults: FaultPlan = field(default_factory=FaultPlan)
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.ha_mode not in ("replicated", "quorum"):
            raise ConfigurationError(f"unknown ha mode {self.ha_mode!r}")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def operation_count(self) -> int:
        """Client-level size: individual requests plus non-batch ops."""
        count = 0
        for op in self.ops:
            count += len(op["requests"]) if op["type"] == "batch" else 1
        return count

    @property
    def batch_count(self) -> int:
        return sum(1 for op in self.ops if op["type"] == "batch")

    def build_config(self) -> WaffleConfig:
        return WaffleConfig(seed=self.seed, **self.config)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> str | None:
        """Return a reason the episode is ill-formed, or None if valid.

        Simulates client-visible key liveness and group membership under
        the same rules the runner enforces, so the shrinker can discard
        mutated episodes that would fail for harness (not system)
        reasons.
        """
        cfg_n = self.config["n"]
        cfg_d = self.config["d"]
        live = {key_name(i) for i in range(cfg_n)}
        #: mutations enqueued but not yet made durable by a batch.
        pending_inserts: list[str] = []
        pending_deletes: list[str] = []
        dummies = cfg_d
        group = self.standbys + 1
        quorum = self.quorum if self.quorum is not None else group // 2 + 1
        alive = [True] * self.standbys

        for position, op in enumerate(self.ops):
            kind = op.get("type")
            where = f"op {position}"
            if kind == "batch":
                if not op["requests"]:
                    return f"{where}: empty batch"
                if len(op["requests"]) > self.config["r"]:
                    return f"{where}: batch exceeds R"
                for request in op["requests"]:
                    if request[0] not in ("read", "write"):
                        return f"{where}: unknown request {request[0]!r}"
                    if request[1] not in live:
                        return f"{where}: key {request[1]!r} not live"
                if self.ha_mode == "quorum" and 1 + sum(alive) < quorum:
                    return f"{where}: batch below quorum"
                # The batch drains the queue: pending mutations durable.
                live.update(pending_inserts)
                dummies -= len(pending_inserts)
                dummies += len(pending_deletes)
                pending_inserts.clear()
                pending_deletes.clear()
            elif kind == "crash":
                if self.ha_mode == "quorum" and sum(alive) < 1:
                    return f"{where}: no standby to promote"
                # Unacknowledged mutations survive only because the
                # runner (acting as the client) re-submits them; keys
                # stay pending either way.
            elif kind == "fail_standby":
                index = op["standby"]
                if not 0 <= index < self.standbys or not alive[index]:
                    return f"{where}: standby {index} not alive"
                alive[index] = False
                if 1 + sum(alive) < quorum:
                    return f"{where}: failure drops group below quorum"
            elif kind == "restore_standby":
                index = op["standby"]
                if not 0 <= index < self.standbys:
                    return f"{where}: no standby {index}"
                alive[index] = True
            elif kind == "insert":
                key = op["key"]
                if key in live or key in pending_inserts:
                    return f"{where}: insert of existing key {key!r}"
                if dummies - len(pending_inserts) <= 0:
                    return f"{where}: no dummy slot for insert"
                if len(op["value"].encode()) > self.config["value_size"] - 4:
                    return f"{where}: insert value too large"
                pending_inserts.append(key)
            elif kind == "delete":
                key = op["key"]
                if key not in live:
                    return f"{where}: delete of non-live key {key!r}"
                live.discard(key)
                pending_deletes.append(key)
            else:
                return f"{where}: unknown op type {kind!r}"
            if self.ha_mode != "quorum" and kind in ("fail_standby",
                                                     "restore_standby"):
                return f"{where}: standby ops require quorum mode"
        return None

    # ------------------------------------------------------------------
    # serialization (the reproducer file format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ha_mode": self.ha_mode,
            "standbys": self.standbys,
            "quorum": self.quorum,
            "config": dict(self.config),
            "ops": [dict(op) for op in self.ops],
            "faults": {str(k): v for k, v in sorted(self.faults.faults.items())},
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Episode":
        return cls(
            seed=data["seed"],
            ha_mode=data.get("ha_mode", "replicated"),
            standbys=data.get("standbys", 2),
            quorum=data.get("quorum"),
            config=dict(data.get("config", DEFAULT_CONFIG)),
            ops=[dict(op) for op in data["ops"]],
            faults=FaultPlan(
                faults={int(k): v
                        for k, v in data.get("faults", {}).items()}),
            max_attempts=data.get("max_attempts", 8),
        )

    def to_json(self, path: str | Path | None = None) -> str:
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, text_or_path: str | Path) -> "Episode":
        if isinstance(text_or_path, Path) or \
                (isinstance(text_or_path, str) and "\n" not in text_or_path
                 and text_or_path.endswith(".json")):
            text = Path(text_or_path).read_text(encoding="utf-8")
        else:
            text = str(text_or_path)
        return cls.from_dict(json.loads(text))


def generate_episode(seed: int, ha_mode: str = "replicated",
                     steps: int = 16, fault_rate: float = 0.06,
                     crash_rate: float = 0.06, mutation_rate: float = 0.08,
                     standby_churn_rate: float = 0.06,
                     write_fraction: float = 0.45,
                     config_overrides: dict | None = None) -> Episode:
    """Sample one valid episode from a seed.

    ``steps`` counts *scheduling slots*: most become request batches, the
    rest crashes, standby churn or mutations according to the rates.
    The generated episode always passes :meth:`Episode.validate`.
    """
    rng = random.Random(seed ^ 0x5EED_C4A0)
    config = dict(DEFAULT_CONFIG)
    if config_overrides:
        config.update(config_overrides)
    episode = Episode(seed=seed, ha_mode=ha_mode, config=config, ops=[])

    live = [key_name(i) for i in range(config["n"])]
    pending_inserts: list[str] = []
    dummies = config["d"]
    alive = [True] * episode.standbys
    quorum = episode.standbys // 2 + 1  # group default used by the runner
    fresh_counter = 0
    value_counter = 0
    inserts_left = min(8, config["d"] // 3)
    deletes_left = min(8, config["n"] - config["c"] - config["b"])

    def make_batch() -> dict:
        nonlocal value_counter
        requests = []
        for _ in range(rng.randint(1, config["r"])):
            key = rng.choice(live)
            if rng.random() < write_fraction:
                value_counter += 1
                requests.append(["write", key, f"w{seed}-{value_counter}"])
            else:
                requests.append(["read", key])
        return {"type": "batch", "requests": requests}

    for step in range(steps):
        roll = rng.random()
        op: dict | None = None
        if step == 0 or step == steps - 1:
            op = None  # force a batch first (baseline) and last (drain)
        elif roll < crash_rate:
            if ha_mode != "quorum" or sum(alive) >= 1:
                op = {"type": "crash"}
        elif roll < crash_rate + standby_churn_rate and ha_mode == "quorum":
            dead = [i for i, ok in enumerate(alive) if not ok]
            can_fail = [i for i, ok in enumerate(alive)
                        if ok and 1 + sum(alive) - 1 >= quorum]
            if dead and rng.random() < 0.5:
                index = rng.choice(dead)
                alive[index] = True
                op = {"type": "restore_standby", "standby": index}
            elif can_fail:
                index = rng.choice(can_fail)
                alive[index] = False
                op = {"type": "fail_standby", "standby": index}
        elif roll < crash_rate + standby_churn_rate + mutation_rate:
            # At most one pending mutation of each kind keeps the drain
            # guarantees (and hence validation) simple.
            if rng.random() < 0.5 and inserts_left and not pending_inserts \
                    and dummies > 0:
                fresh_counter += 1
                key = f"chaos{seed}-{fresh_counter:04d}"
                value_counter += 1
                pending_inserts.append(key)
                dummies -= 1
                inserts_left -= 1
                op = {"type": "insert", "key": key,
                      "value": f"i{seed}-{value_counter}"}
            elif deletes_left and len(live) > config["c"] + config["b"]:
                key = live.pop(rng.randrange(len(live)))
                dummies += 1
                deletes_left -= 1
                op = {"type": "delete", "key": key}
        if op is None:
            op = make_batch()
            live.extend(pending_inserts)
            pending_inserts.clear()
        episode.ops.append(op)

    # Storage-fault horizon: 3 server ops per completed round, doubled
    # for retried attempts, plus slack so late faults still land.
    horizon = 6 * episode.batch_count + 8
    episode.faults = FaultPlan.generate(seed ^ 0xFA17, horizon,
                                        rate=fault_rate, kinds=FAULT_KINDS)
    episode.max_attempts = len(episode.faults) + 3

    reason = episode.validate()
    if reason is not None:  # pragma: no cover - generator invariant
        raise ConfigurationError(f"generated episode invalid: {reason}")
    return episode
