"""Seeded chaos sweeps: many episodes, mixed adversity profiles.

One episode exercises one scenario; confidence comes from volume.  A
sweep generates ``episodes`` deterministic episodes from consecutive
seeds, alternating HA modes and cycling through adversity *profiles*
(fault-heavy, crash-heavy, calm-with-mutations, everything-at-once), and
runs each through the full differential oracle.  The sweep is itself a
pure function of ``base_seed`` — CI failures replay locally bit-for-bit
via ``repro.cli chaos --seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.testing.episodes import Episode, generate_episode
from repro.testing.oracle import Violation
from repro.testing.runner import EpisodeResult, run_episode

__all__ = ["DEFAULT_PROFILES", "SweepReport", "run_sweep"]

#: Named adversity mixes; each episode takes the next one round-robin.
DEFAULT_PROFILES: tuple[dict, ...] = (
    {"name": "mixed", "fault_rate": 0.05, "crash_rate": 0.05},
    {"name": "faulty-storage", "fault_rate": 0.14, "crash_rate": 0.0},
    {"name": "crashy-proxy", "fault_rate": 0.0, "crash_rate": 0.2},
    {"name": "churn", "fault_rate": 0.08, "crash_rate": 0.06,
     "mutation_rate": 0.2, "standby_churn_rate": 0.12},
)


@dataclass(slots=True)
class SweepReport:
    """Aggregate outcome of one chaos sweep."""

    episodes: int = 0
    rounds_committed: int = 0
    failovers: int = 0
    aborted_attempts: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: Failing episodes with their violations, in discovery order.
    failures: list[tuple[Episode, list[Violation]]] = field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"episodes          : {self.episodes}",
            f"rounds committed  : {self.rounds_committed}",
            f"failovers         : {self.failovers}",
            f"aborted attempts  : {self.aborted_attempts}",
            f"faults injected   : "
            + (", ".join(f"{kind}={count}" for kind, count
                         in sorted(self.faults_injected.items())) or "none"),
            f"violations        : "
            + str(sum(len(v) for _, v in self.failures)),
        ]
        for episode, violations in self.failures[:5]:
            lines.append(f"  seed {episode.seed} ({episode.ha_mode}): "
                         + "; ".join(str(v) for v in violations[:3]))
        return "\n".join(lines)


def _absorb(report: SweepReport, result: EpisodeResult) -> None:
    report.episodes += 1
    report.rounds_committed += result.rounds_committed
    report.failovers += result.failovers
    report.aborted_attempts += result.aborted_attempts
    for kind, count in result.faults_injected.items():
        report.faults_injected[kind] = \
            report.faults_injected.get(kind, 0) + count
    if not result.ok:
        report.failures.append((result.episode, result.violations))


def run_sweep(episodes: int = 100, base_seed: int = 0,
              ha_modes: tuple[str, ...] = ("replicated", "quorum"),
              profiles: tuple[dict, ...] = DEFAULT_PROFILES,
              steps: int = 16,
              stop_on_failure: bool = False) -> SweepReport:
    """Run ``episodes`` seeded chaos episodes and aggregate the verdicts."""
    report = SweepReport()
    for index in range(episodes):
        profile = dict(profiles[index % len(profiles)])
        profile.pop("name", None)
        episode = generate_episode(
            seed=base_seed + index,
            ha_mode=ha_modes[index % len(ha_modes)],
            steps=steps,
            **profile)
        _absorb(report, run_episode(episode))
        if stop_on_failure and report.failures:
            break
    return report
