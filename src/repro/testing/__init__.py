"""Chaos conformance harness: deterministic fault injection plus a
differential oracle over Waffle's correctness *and* obliviousness.

The pieces compose bottom-up:

* :mod:`repro.testing.faults` — seeded :class:`FaultPlan` schedules and
  the :class:`FaultyStorage`/:class:`FaultyTransport` wrappers that
  execute them;
* :mod:`repro.testing.episodes` — randomized, validated, serializable
  chaos scenarios (:class:`Episode`, :func:`generate_episode`);
* :mod:`repro.testing.runner` — executes an episode against the real
  stack with HA failover recovery (:func:`run_episode`);
* :mod:`repro.testing.oracle` — the invariants: differential KV
  semantics, replay-prefix obliviousness, constant batch composition,
  id lifecycle, α/β uniformity;
* :mod:`repro.testing.shrink` — ddmin minimizer for failing episodes;
* :mod:`repro.testing.sweep` — seeded many-episode CI sweeps.

Entry points: ``repro.cli chaos`` and ``tests/test_chaos_*.py``.
"""

from repro.testing.episodes import (
    DEFAULT_CONFIG,
    Episode,
    chaos_config,
    generate_episode,
)
from repro.testing.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultyStorage,
    FaultyTransport,
    InjectedFault,
    PassthroughStore,
)
from repro.testing.oracle import Attempt, Violation
from repro.testing.runner import EpisodeResult, run_episode
from repro.testing.shrink import ShrinkResult, shrink_episode
from repro.testing.sweep import DEFAULT_PROFILES, SweepReport, run_sweep

__all__ = [
    "DEFAULT_CONFIG",
    "DEFAULT_PROFILES",
    "Attempt",
    "Episode",
    "EpisodeResult",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultyStorage",
    "FaultyTransport",
    "InjectedFault",
    "PassthroughStore",
    "ShrinkResult",
    "SweepReport",
    "Violation",
    "chaos_config",
    "generate_episode",
    "run_episode",
    "run_sweep",
    "shrink_episode",
]
