"""Executing one chaos episode against the real system.

The runner deploys the full Waffle stack —

    WaffleProxy -> [test mutator] -> FaultyStorage -> RecordingStore
                -> RedisSim(write_once)

— wrapped in the episode's HA scheme, drives the episode's operation
script through it, and recovers from every injected fault the way a real
client-facing deployment would:

1. the failed batch's exception discards the (possibly mid-round,
   corrupted) primary;
2. the HA layer promotes the standby snapshot (synchronous shipping, so
   it is exactly the pre-batch state) attached to the same server;
3. mutations the client enqueued after that snapshot are re-submitted
   (they live in proxy memory until a batch drains them, so the
   snapshot cannot contain them — client retry is the recovery path);
4. the same request batch is retried verbatim.

Determinism makes step 4 byte-identical to the aborted attempt on the
adversary channel — the property the oracle's replay-prefix check pins.

Because every injected fault fires before the server applies anything
(see :mod:`repro.testing.faults`) and the proxy commits each round's
mutations atomically (``commit_round``), the server is always in the
pre-batch state when the retry starts; the retried round finds every id
it re-derives.

Alongside the real system the runner executes the episode against an
:class:`~repro.baselines.insecure.InsecureStore` *in request order* —
the differential model.  Every Waffle response must match it, within
batches (read-your-writes) and across failovers (durability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.uniformity import UniformityReport
from repro.baselines.insecure import InsecureStore
from repro.core.batch import ClientRequest
from repro.core.datastore import pad_value, unpad_value
from repro.core.proxy import WaffleProxy
from repro.crypto.keys import KeyChain
from repro.errors import ProtocolError
from repro.ha.quorum import QuorumReplicatedProxy
from repro.ha.replicated import HighlyAvailableProxy
from repro.storage.base import StorageBackend
from repro.storage.memory import InMemoryStore
from repro.storage.recording import AccessRecord, RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.testing.episodes import Episode
from repro.testing.faults import FaultyStorage, InjectedFault
from repro.testing.oracle import (
    Attempt,
    Violation,
    check_batch_shape,
    check_replay_prefix,
    check_uniformity,
    collapse_trace,
)
from repro.workloads.trace import Operation
from repro.workloads.ycsb import key_name

__all__ = ["EpisodeResult", "run_episode"]

#: Optional storage mutator for self-tests: wraps the fault-injecting
#: store and may corrupt traffic (the mutation smoke test plants bugs
#: this way to prove the oracle catches them).
StoreWrapper = Callable[[StorageBackend], StorageBackend]


@dataclass(slots=True)
class EpisodeResult:
    """Everything one chaos run produced, for oracles and reports."""

    episode: Episode
    violations: list[Violation] = field(default_factory=list)
    rounds_committed: int = 0
    failovers: int = 0
    aborted_attempts: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)
    attempts: list[Attempt] = field(default_factory=list)
    collapsed_records: list[AccessRecord] = field(default_factory=list)
    report: UniformityReport | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _initial_items(episode: Episode) -> dict[str, bytes]:
    """The episode's deterministic initial dataset (plaintext values)."""
    return {
        key_name(i): f"init-{episode.seed}-{i}".encode()
        for i in range(episode.config["n"])
    }


def run_episode(episode: Episode,
                wrap_store: StoreWrapper | None = None,
                parallel_pool=None,
                crypto_backend: str | None = None) -> EpisodeResult:
    """Execute ``episode`` end to end and judge it against the oracle.

    ``parallel_pool`` optionally routes the proxy's batched crypto
    through a :class:`repro.parallel.WorkerPool` — the determinism-
    under-parallelism suite runs the same episodes with and without a
    pool and asserts identical oracles and traces.  Checkpoint restores
    reduce the pooled kernel wrappers back to plain kernels (they are
    byte-identical), so the pool is re-attached after every failover.

    ``crypto_backend`` selects the keychain's kernel implementation
    (:mod:`repro.crypto.backend`); every backend is byte-identical, so
    the sweep asserts the backend — like the worker count — is not an
    input to the oracle.
    """
    result = EpisodeResult(episode=episode)
    cfg = episode.build_config()
    value_size = cfg.value_size

    # ---- deploy the stack ------------------------------------------------
    server = RedisSim(write_once=True)
    recorder = RecordingStore(server)
    proxy = WaffleProxy(cfg, store=recorder,
                        keychain=KeyChain.from_seed(episode.seed,
                                                    backend=crypto_backend),
                        log_ids=True)
    items = _initial_items(episode)
    proxy.initialize(
        {key: pad_value(value, value_size) for key, value in items.items()})
    if parallel_pool is not None:
        from repro.parallel import attach_pool

        attach_pool(proxy, parallel_pool)
    init_end_seq = len(recorder.records)
    # Faults are spliced in only after initialization: the episode's
    # fault plan indexes steady-state operations, and the HA snapshot
    # below must capture a cleanly initialized proxy.
    chain: StorageBackend = FaultyStorage(recorder, episode.faults)
    faulty = chain
    if wrap_store is not None:
        chain = wrap_store(chain)
    proxy.store = chain

    if episode.ha_mode == "quorum":
        ha: HighlyAvailableProxy | QuorumReplicatedProxy = \
            QuorumReplicatedProxy(proxy, standbys=episode.standbys,
                                  quorum=episode.quorum)
    else:
        ha = HighlyAvailableProxy(proxy)

    # ---- the insecure differential model ---------------------------------
    baseline = InsecureStore(InMemoryStore(), items)

    #: Client-side mutations not yet drained by a committed batch.  The
    #: HA snapshot predates them, so after every failover the client
    #: (this runner) re-submits — standard retry semantics.
    outstanding: list[dict] = []
    inserts_total = 0
    deletes_total = 0
    batch_index = 0

    def fail_over() -> None:
        ha.fail_over()
        result.failovers += 1
        if parallel_pool is not None:
            # The promoted standby was restored from a pickle, which
            # reduced the pooled kernels to their plain inners.
            from repro.parallel import attach_pool

            attach_pool(ha.proxy, parallel_pool)
        # Re-submit client mutations the promoted snapshot may predate.
        # Idempotent: a snapshot taken after the enqueue (e.g. shipped to
        # a standby restored mid-episode) already carries the mutation.
        mutations = ha.proxy.mutations
        for op in outstanding:
            if op["type"] == "insert":
                if not mutations.has_insert(op["key"]):
                    mutations.enqueue_insert(
                        op["key"],
                        pad_value(op["value"].encode(), value_size))
            elif not mutations.has_delete(op["key"]):
                mutations.enqueue_delete(op["key"])

    def run_batch(op: dict) -> bool:
        """One batch to commit, retrying through failovers.  False = abort."""
        nonlocal batch_index
        prepared = []
        for request in op["requests"]:
            if request[0] == "read":
                prepared.append(
                    ClientRequest(op=Operation.READ, key=request[1]))
            else:
                prepared.append(
                    ClientRequest(op=Operation.WRITE, key=request[1],
                                  value=pad_value(request[2].encode(),
                                                  value_size)))
        for attempt_index in range(episode.max_attempts):
            start_seq = len(recorder.records)
            try:
                responses = ha.handle_batch(prepared)
            except InjectedFault as error:
                result.attempts.append(Attempt(
                    batch_index, attempt_index, start_seq,
                    len(recorder.records), ok=False,
                    error=type(error).__name__))
                result.aborted_attempts += 1
                fail_over()
                continue
            except Exception as error:  # noqa: BLE001 - the whole point
                result.violations.append(Violation(
                    "crash",
                    f"batch {batch_index} raised non-injected "
                    f"{type(error).__name__}: {error}"))
                return False
            result.attempts.append(Attempt(
                batch_index, attempt_index, start_seq,
                len(recorder.records), ok=True))
            result.rounds_committed += 1
            # Differential check, in request order (read-your-writes).
            by_id = {resp.request_id: resp for resp in responses}
            for request, spec in zip(prepared, op["requests"]):
                if spec[0] == "write":
                    baseline.put(request.key, spec[2].encode())
                    expected = spec[2].encode()
                else:
                    expected = baseline.get(request.key)
                got = unpad_value(by_id[request.request_id].value)
                if got != expected:
                    result.violations.append(Violation(
                        "semantics",
                        f"batch {batch_index} {spec[0]} of "
                        f"{request.key!r} returned {got!r}, expected "
                        f"{expected!r}"))
            # A committed batch drains every pending mutation (the chaos
            # generator keeps at most one of each kind in flight, within
            # the per-round drain budget); stragglers the proxy deferred
            # internally now live in its snapshotted queue.
            outstanding.clear()
            batch_index += 1
            return True
        result.violations.append(Violation(
            "unrecoverable",
            f"batch {batch_index} still failing after "
            f"{episode.max_attempts} attempts"))
        return False

    # ---- drive the script ------------------------------------------------
    aborted = False
    for op in episode.ops:
        kind = op["type"]
        try:
            if kind == "batch":
                if not run_batch(op):
                    aborted = True
                    break
            elif kind == "crash":
                fail_over()
            elif kind == "fail_standby":
                ha.fail_standby(op["standby"])
            elif kind == "restore_standby":
                ha.restore_standby(op["standby"])
            elif kind == "insert":
                ha.proxy.mutations.enqueue_insert(
                    op["key"], pad_value(op["value"].encode(), value_size))
                baseline.put(op["key"], op["value"].encode())
                outstanding.append(op)
                inserts_total += 1
            elif kind == "delete":
                ha.proxy.mutations.enqueue_delete(op["key"])
                baseline.delete(op["key"])
                outstanding.append(op)
                deletes_total += 1
            else:
                raise ProtocolError(f"unknown episode op {kind!r}")
        except InjectedFault:  # pragma: no cover - only batches see faults
            raise
        except Exception as error:  # noqa: BLE001
            result.violations.append(Violation(
                "crash",
                f"op {kind!r} raised {type(error).__name__}: {error}"))
            aborted = True
            break

    # ---- judge -----------------------------------------------------------
    records = recorder.records
    result.violations.extend(check_replay_prefix(records, result.attempts))
    result.collapsed_records = collapse_trace(records, result.attempts,
                                              init_end_seq)
    result.violations.extend(
        check_batch_shape(result.collapsed_records, cfg.b))
    if not aborted:
        uniformity_violations, report = check_uniformity(
            result.collapsed_records, ha.proxy.id_log, cfg,
            inserts_total=inserts_total, deletes_total=deletes_total)
        result.violations.extend(uniformity_violations)
        result.report = report
    result.faults_injected = dict(faulty.injected)
    return result
