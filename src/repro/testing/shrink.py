"""Minimizing failing chaos episodes (delta debugging).

When a sweep finds a violating episode, raw reproducers are big — dozens
of operations and fault entries, most irrelevant to the bug.  The
shrinker reduces the episode while a caller-supplied predicate keeps
failing, using ddmin (Zeller & Hildebrandt) over three axes in order:

1. whole operations (batches, crashes, standby churn, mutations),
2. requests inside each surviving batch,
3. fault-plan entries.

Candidates that no longer validate (:meth:`Episode.validate` — e.g. a
batch reading a key whose insert was removed) are treated as *passing*
so the search never leaves the space of well-formed episodes; the
result is always a valid episode the predicate still fails.

Determinism note: shrinking never reseeds.  The reduced episode replays
with the same proxy seed and the same fault plan indices, so the
predicate evaluates the same system behaviour minus the removed
operations — which is what makes a 2-operation reproducer of a
40-operation failure trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.testing.episodes import Episode
from repro.testing.faults import FaultPlan

__all__ = ["ShrinkResult", "shrink_episode"]


@dataclass(slots=True)
class ShrinkResult:
    """A minimized episode plus the search's bookkeeping."""

    episode: Episode
    evaluations: int
    initial_size: int
    final_size: int


class _Budget:
    """Caps predicate evaluations so shrinking stays CI-friendly."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _ddmin(items: list, still_fails: Callable[[list], bool],
           budget: _Budget) -> list:
    """Classic ddmin: smallest sublist (wrt removal) that still fails."""
    granularity = 2
    current = list(items)
    while len(current) >= 2 and budget.spent < budget.limit:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and budget.take() and still_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def _with_ops(episode: Episode, ops: list[dict]) -> Episode:
    return replace(episode, ops=[dict(op) for op in ops])


def _valid_and_fails(episode: Episode,
                     failing: Callable[[Episode], bool]) -> bool:
    return episode.validate() is None and failing(episode)


def shrink_episode(episode: Episode,
                   failing: Callable[[Episode], bool],
                   max_evaluations: int = 400) -> ShrinkResult:
    """Minimize ``episode`` while ``failing`` stays true.

    ``failing`` takes an :class:`Episode` and returns True when the
    behaviour under investigation still reproduces (typically: the
    runner reports at least one violation).  The original episode must
    fail; otherwise it is returned untouched.
    """
    initial_size = episode.operation_count
    if not _valid_and_fails(episode, failing):
        return ShrinkResult(episode, 1, initial_size, initial_size)
    budget = _Budget(max_evaluations)
    current = episode

    # Pass 1: whole operations.
    ops = _ddmin(
        current.ops,
        lambda candidate: _valid_and_fails(_with_ops(current, candidate),
                                           failing),
        budget)
    current = _with_ops(current, ops)

    # Pass 2: requests inside each batch (one batch at a time).
    for position, op in enumerate(current.ops):
        if op["type"] != "batch" or len(op["requests"]) <= 1:
            continue

        def fails_with_requests(requests: Sequence,
                                _position: int = position) -> bool:
            ops = [dict(o) for o in current.ops]
            ops[_position]["requests"] = [list(r) for r in requests]
            return _valid_and_fails(_with_ops(current, ops), failing)

        kept = _ddmin(op["requests"], fails_with_requests, budget)
        ops = [dict(o) for o in current.ops]
        ops[position]["requests"] = [list(r) for r in kept]
        current = _with_ops(current, ops)

    # Pass 3: fault-plan entries.
    entries = sorted(current.faults.faults.items())
    if len(entries) > 1:

        def fails_with_faults(kept: Sequence) -> bool:
            candidate = replace(current, faults=FaultPlan(faults=dict(kept)))
            return _valid_and_fails(candidate, failing)

        kept = _ddmin(entries, fails_with_faults, budget)
        current = replace(current, faults=FaultPlan(faults=dict(kept)))

    # Individual-removal polish on operations (ddmin can plateau).
    changed = True
    while changed and budget.spent < budget.limit:
        changed = False
        for position in range(len(current.ops) - 1, -1, -1):
            if len(current.ops) == 1:
                break
            candidate_ops = (current.ops[:position]
                             + current.ops[position + 1:])
            if budget.take() and _valid_and_fails(
                    _with_ops(current, candidate_ops), failing):
                current = _with_ops(current, candidate_ops)
                changed = True
    return ShrinkResult(current, budget.spent, initial_size,
                        current.operation_count)
