"""Chaos and timing conformance for the asyncio serving frontend.

The batch-level chaos harness (:mod:`repro.testing.runner`) drives one
scripted batch at a time; this module drives the *serving* path — an
:class:`~repro.serve.frontend.AsyncFrontend` fed by an open-loop arrival
stream, with a stateful :class:`~repro.testing.faults.FaultyTransport`
spliced between the proxy and the recorded server so connection drops,
timeouts and partial replies land mid-connection, while the round is in
flight.

Recovery is the production shape: the frontend's round executor retries
an injected fault by reconnecting the transport and failing over to the
HA standby snapshot (deterministic replay — the aborted attempt is a
byte prefix of the retry), and the same differential oracle as the
batch harness judges the result:

* every response matches an insecure in-order model (read-your-writes
  in round order, durability across failovers);
* aborted attempts are exact replay prefixes of their commits;
* the collapsed trace keeps Waffle's B/B/B shape and α/β bounds;
* shed requests leave **no** storage-visible records at all.

:func:`live_timing_report` runs the real frontend on the real clock
under a flash-crowd arrival stream and scores each release policy with
the PR-7 timing attacks against ground-truth rates — producing the
``{"on_fill": ..., "fixed": ...}`` shape
:func:`repro.testing.oracle.check_timing_channel` judges.  The
fixed-interval policy commits to grid ticks, so its gap series is
constant and scores exactly 0.0.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.analysis.timing import detect_onset, load_inference_attack
from repro.analysis.uniformity import UniformityReport
from repro.baselines.insecure import InsecureStore
from repro.core.batch import ClientRequest, ClientResponse
from repro.core.config import WaffleConfig
from repro.core.datastore import pad_value, unpad_value
from repro.core.proxy import WaffleProxy
from repro.crypto.keys import KeyChain
from repro.errors import BackendUnavailableError, OverloadedError
from repro.ha.replicated import HighlyAvailableProxy
from repro.serve.frontend import AsyncFrontend
from repro.serve.policy import make_policy
from repro.storage.memory import InMemoryStore
from repro.storage.recording import AccessRecord, RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.testing.episodes import DEFAULT_CONFIG
from repro.testing.faults import FaultPlan, FaultyTransport, InjectedFault
from repro.testing.oracle import (
    Attempt,
    Violation,
    check_batch_shape,
    check_replay_prefix,
    check_uniformity,
    collapse_trace,
)
from repro.workloads.openloop import (
    FlashCrowdArrivals,
    PoissonArrivals,
)
from repro.workloads.trace import Operation
from repro.workloads.ycsb import key_name

__all__ = [
    "ServingEpisode",
    "ServingResult",
    "live_timing_report",
    "run_serving_episode",
    "run_serving_sweep",
]


@dataclass
class ServingEpisode:
    """One deterministic serving chaos scenario.

    The arrival stream, the fault plan, and the proxy are all seeded, so
    an episode replays bit-for-bit: arrivals enqueue in stream order
    (asyncio task creation order is deterministic), rounds partition the
    queue FIFO, and injected faults fire at fixed storage-op indices.
    """

    seed: int
    workload: str = "poisson"  # "poisson" | "flash_crowd"
    requests: int = 48
    rate: float = 1000.0
    policy: str = "on_fill"
    queue_cap: int = 4096
    fault_rate: float = 0.05
    write_fraction: float = 0.45
    config: dict = field(default_factory=lambda: dict(DEFAULT_CONFIG))
    max_attempts: int = 8

    def build_config(self) -> WaffleConfig:
        return WaffleConfig(seed=self.seed, **self.config)

    def build_arrivals(self):
        """The episode's arrival stream (ops drawn from the same seed)."""
        n_keys = self.config["n"]
        read_fraction = 1.0 - self.write_fraction
        if self.workload == "poisson":
            return PoissonArrivals(self.rate, n_keys, seed=self.seed,
                                   read_fraction=read_fraction)
        if self.workload == "flash_crowd":
            duration = self.requests / self.rate
            return FlashCrowdArrivals(
                self.rate, n_keys, spike_factor=4.0,
                burst_start=duration * 0.4, burst_duration=duration * 0.3,
                hot_keys=max(1, n_keys // 16), seed=self.seed,
                read_fraction=read_fraction)
        raise ValueError(f"unknown serving workload {self.workload!r}")


@dataclass(slots=True)
class ServingResult:
    """Everything one serving chaos run produced, for oracles and reports."""

    episode: ServingEpisode
    violations: list[Violation] = field(default_factory=list)
    rounds_committed: int = 0
    aborted_attempts: int = 0
    reconnects: int = 0
    failovers: int = 0
    shed: int = 0
    completed: int = 0
    attempts: list[Attempt] = field(default_factory=list)
    collapsed_records: list[AccessRecord] = field(default_factory=list)
    release_times: list[float] = field(default_factory=list)
    report: UniformityReport | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


def run_serving_episode(episode: ServingEpisode) -> ServingResult:
    """Drive one open-loop arrival stream through a faulty serving stack."""
    result = ServingResult(episode=episode)
    cfg = episode.build_config()
    value_size = cfg.value_size

    # ---- deploy: proxy -> FaultyTransport -> recorder -> server ---------
    server = RedisSim(write_once=True)
    recorder = RecordingStore(server)
    proxy = WaffleProxy(cfg, store=recorder,
                        keychain=KeyChain.from_seed(episode.seed),
                        log_ids=True)
    items = {key_name(i): f"serve-{episode.seed}-{i}".encode()
             for i in range(cfg.n)}
    proxy.initialize(
        {key: pad_value(value, value_size) for key, value in items.items()})
    init_end_seq = len(recorder.records)
    transport = FaultyTransport(
        recorder,
        FaultPlan.generate(episode.seed ^ 0x5E12FE, 6 * episode.requests + 8,
                           rate=episode.fault_rate))
    proxy.store = transport
    ha = HighlyAvailableProxy(proxy)
    baseline = InsecureStore(InMemoryStore(), items)
    batch_counter = 0

    def execute(requests: list[ClientRequest]) -> list[ClientResponse]:
        """One round, retried through reconnect + failover on faults.

        Runs in the frontend's executor thread; rounds are strictly
        sequential, so the HA object and the baseline see ordered use.
        """
        nonlocal batch_counter
        batch_index = batch_counter
        batch_counter += 1
        prepared = [
            ClientRequest(op=req.op, key=req.key,
                          value=pad_value(req.value, value_size),
                          request_id=req.request_id)
            if req.value is not None else req
            for req in requests
        ]
        for attempt_index in range(episode.max_attempts):
            start_seq = len(recorder.records)
            try:
                responses = ha.handle_batch(prepared)
            except InjectedFault as error:
                result.attempts.append(Attempt(
                    batch_index, attempt_index, start_seq,
                    len(recorder.records), ok=False,
                    error=type(error).__name__))
                result.aborted_attempts += 1
                transport.reconnect()
                result.reconnects += 1
                ha.fail_over()
                result.failovers += 1
                continue
            result.attempts.append(Attempt(
                batch_index, attempt_index, start_seq,
                len(recorder.records), ok=True))
            result.rounds_committed += 1
            # Differential model, in round order (= admission order).
            by_id = {resp.request_id: resp for resp in responses}
            for request in requests:
                if request.op is Operation.WRITE:
                    baseline.put(request.key, request.value)
                    expected = request.value
                else:
                    expected = baseline.get(request.key)
                got = unpad_value(by_id[request.request_id].value)
                if got != expected:
                    result.violations.append(Violation(
                        "semantics",
                        f"round {batch_index} {request.op.value} of "
                        f"{request.key!r} returned {got!r}, expected "
                        f"{expected!r}"))
            return [
                ClientResponse(request_id=resp.request_id, key=resp.key,
                               value=unpad_value(resp.value))
                for resp in responses
            ]
        raise BackendUnavailableError(
            f"round {batch_index} still failing after "
            f"{episode.max_attempts} attempts")

    # ---- drive the open-loop stream through the frontend -----------------
    arrivals = episode.build_arrivals().generate(
        episode.requests / episode.rate * 4.0)[:episode.requests]

    async def drive() -> None:
        frontend = AsyncFrontend(
            execute=execute, r=cfg.r,
            policy=make_policy(episode.policy, cfg.r, max_wait_s=0.002),
            queue_cap=episode.queue_cap)
        await frontend.start()

        async def one(arrival):
            if arrival.op is Operation.WRITE:
                value = f"w-{arrival.key}-{arrival.at:.6f}".encode()
                return await frontend.put(arrival.key, value)
            return await frontend.get(arrival.key)

        # Tasks run their first step (through the synchronous enqueue) in
        # creation order at the next suspension point, so the pending
        # queue holds the whole stream in arrival order before rounds
        # fire; close() then drains any sub-R straggler tail that a pure
        # on-fill policy would otherwise hold forever.
        tasks = [asyncio.ensure_future(one(arrival)) for arrival in arrivals]
        await asyncio.sleep(0)
        await frontend.close()
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        result.release_times = list(frontend.release_times)
        for outcome in outcomes:
            if isinstance(outcome, OverloadedError):
                result.shed += 1
            elif isinstance(outcome, BaseException):
                result.violations.append(Violation(
                    "crash",
                    f"client saw non-injected "
                    f"{type(outcome).__name__}: {outcome}"))
            else:
                result.completed += 1

    asyncio.run(drive())

    # ---- judge -----------------------------------------------------------
    records = recorder.records
    result.violations.extend(check_replay_prefix(records, result.attempts))
    result.collapsed_records = collapse_trace(records, result.attempts,
                                              init_end_seq)
    result.violations.extend(check_batch_shape(result.collapsed_records,
                                               cfg.b))
    uniformity_violations, report = check_uniformity(
        result.collapsed_records, ha.proxy.id_log, cfg)
    result.violations.extend(uniformity_violations)
    result.report = report
    return result


@dataclass(slots=True)
class ServingSweepReport:
    """Aggregate outcome of a serving chaos sweep."""

    episodes: int = 0
    rounds_committed: int = 0
    aborted_attempts: int = 0
    reconnects: int = 0
    shed: int = 0
    completed: int = 0
    failures: list[tuple[ServingEpisode, list[Violation]]] = field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"serving episodes  : {self.episodes}",
            f"rounds committed  : {self.rounds_committed}",
            f"aborted attempts  : {self.aborted_attempts}",
            f"reconnects        : {self.reconnects}",
            f"requests completed: {self.completed} (+{self.shed} shed)",
            f"violations        : "
            + str(sum(len(v) for _, v in self.failures)),
        ]
        for episode, violations in self.failures[:5]:
            lines.append(f"  seed {episode.seed} ({episode.workload}/"
                         f"{episode.policy}): "
                         + "; ".join(str(v) for v in violations[:3]))
        return "\n".join(lines)


def run_serving_sweep(episodes: int = 12, base_seed: int = 0,
                      requests: int = 32,
                      fault_rate: float = 0.05) -> ServingSweepReport:
    """Run seeded serving episodes across workloads × policies.

    Fixed-interval is excluded here: it fires wall-clock-paced empty
    rounds, which belongs to the live timing check
    (:func:`live_timing_report`), not the deterministic oracle sweep.
    """
    workloads = ("poisson", "flash_crowd")
    policies = ("on_fill", "max_wait")
    report = ServingSweepReport()
    for index in range(episodes):
        episode = ServingEpisode(
            seed=base_seed + index,
            workload=workloads[index % len(workloads)],
            policy=policies[(index // len(workloads)) % len(policies)],
            requests=requests,
            fault_rate=fault_rate)
        result = run_serving_episode(episode)
        report.episodes += 1
        report.rounds_committed += result.rounds_committed
        report.aborted_attempts += result.aborted_attempts
        report.reconnects += result.reconnects
        report.shed += result.shed
        report.completed += result.completed
        if not result.ok:
            report.failures.append((episode, result.violations))
    return report


# ----------------------------------------------------------------------
# the live timing check
# ----------------------------------------------------------------------
def _score_live_policy(policy_name: str, *, seed: int, rate: float,
                       duration_s: float, interval_s: float,
                       r: int) -> dict:
    """Run the real frontend on the real clock and score its schedule."""
    workload = FlashCrowdArrivals(
        rate, 64, spike_factor=5.0, burst_start=duration_s * 0.4,
        burst_duration=duration_s * 0.3, hot_keys=4, seed=seed,
        read_fraction=1.0)
    arrivals = workload.generate(duration_s)

    def execute(requests: list[ClientRequest]) -> list[ClientResponse]:
        # The adversary scores *when* rounds fire, not what they carry;
        # a stand-in executor keeps the live run fast and jitter-free.
        return [ClientResponse(request_id=req.request_id, key=req.key,
                               value=b"") for req in requests]

    release_times: list[float] = []
    anchor = 0.0

    async def drive() -> None:
        nonlocal anchor
        loop = asyncio.get_running_loop()
        # Warm the default executor so the first round does not pay
        # thread-pool spin-up inside a measured gap.
        await loop.run_in_executor(None, lambda: None)
        frontend = AsyncFrontend(
            execute=execute, r=r,
            policy=make_policy(policy_name, r, max_wait_s=interval_s,
                               interval_s=interval_s))
        start = frontend._clock()
        anchor = start
        await frontend.start()
        submitted = 0
        all_submitted = asyncio.Event()

        async def one(arrival):
            nonlocal submitted
            await asyncio.sleep(max(0.0, arrival.at
                                    - (frontend._clock() - start)))
            submitted += 1
            if submitted == len(arrivals):
                all_submitted.set()
            # The enqueue below happens in this same task step, before
            # any close() waiter woken by the event can run.
            return await frontend.get(arrival.key)

        tasks = [asyncio.ensure_future(one(arrival)) for arrival in arrivals]
        await all_submitted.wait()
        if frontend.policy.fires_empty:
            # Let the shaped schedule idle past the stream's end so the
            # adversary also sees the "quiet" regime.
            await asyncio.sleep(duration_s * 0.2)
        await frontend.close()  # drains any sub-R on-fill straggler tail
        await asyncio.gather(*tasks)
        release_times.extend(frontend.release_times)

    asyncio.run(drive())

    gaps = list(zip(release_times, release_times[1:]))
    true_rates = [workload.rate_at((a + b) / 2.0 - anchor) for a, b in gaps]
    attack = load_inference_attack(release_times, true_rates, r)
    return {
        "policy": policy_name,
        "rounds": len(release_times),
        "leakage_score": attack["leakage_score"],
        "onset_gap": detect_onset(release_times),
        "seed": seed,
    }


def live_timing_report(seed: int = 0, *, rate: float = 600.0,
                       duration_s: float = 0.6,
                       interval_s: float = 0.025, r: int = 4) -> dict:
    """Score on-fill vs fixed-interval on the live (wall-clock) frontend.

    Returns the benchmark shape
    :func:`repro.testing.oracle.check_timing_channel` expects.  The
    schedule scored is the one each policy *committed to*: on-fill
    commits to "now" (workload-shaped, leaky), fixed-interval commits to
    grid ticks (constant gaps, leakage exactly 0.0 — sub-tick dispatch
    jitter is host noise below the adversary's sampling resolution).
    """
    report = {
        "seed": seed,
        "on_fill": _score_live_policy("on_fill", seed=seed, rate=rate,
                                      duration_s=duration_s,
                                      interval_s=interval_s, r=r),
        "fixed": _score_live_policy("fixed_interval", seed=seed, rate=rate,
                                    duration_s=duration_s,
                                    interval_s=interval_s, r=r),
    }
    return report
