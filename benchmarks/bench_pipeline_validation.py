"""Pipeline validation: the DES mechanism vs the analytic core curve.

Figure 2c's core-scaling shape enters the cost model as an analytic
curve; this bench runs the discrete-event pipeline model (shared proxy
lock + contention growth + per-worker coordination) at the same
configuration and prints the two side by side.  Agreement in shape —
interior peak, post-peak decline to near/below single-core — shows the
analytic curve summarizes a mechanism, not a fudge.
"""

from conftest import publish

from repro.bench.reporting import format_table
from repro.core.config import WaffleConfig
from repro.sim.costmodel import CostModel
from repro.sim.pipeline import model_from_cost, speedup_curve

N = 2**14


def run() -> list[dict]:
    config = WaffleConfig.paper_defaults(n=N, seed=1)
    cost = CostModel()
    des = speedup_curve(model_from_cost(config, cost))
    return [
        {
            "workers": count,
            "des_speedup": des[count],
            "analytic_efficiency": cost.core_efficiency(count),
        }
        for count in sorted(des)
    ]


def test_pipeline_validation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        rows, title="Proxy pipeline DES vs analytic core curve "
                    f"(N={N}; paper Figure 2c peaks at 4 cores)")
    publish("pipeline_validation", text)

    des = {row["workers"]: row["des_speedup"] for row in rows}
    analytic = {row["workers"]: row["analytic_efficiency"] for row in rows}
    des_peak = max(des, key=lambda c: des[c])
    analytic_peak = max(analytic, key=lambda c: analytic[c])
    assert 2 <= des_peak <= 6
    assert analytic_peak == 4
    # Both decline substantially past their peaks.
    assert des[12] < 0.6 * des[des_peak]
    assert analytic[12] < 0.6 * analytic[analytic_peak]
