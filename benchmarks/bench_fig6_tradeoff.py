"""Figure 6: security (theoretical α) vs throughput over an R/f_D grid.

Paper: lower α (more security) entails lower throughput; the R/f_D
grid traces the frontier an operator tunes along (§8.4).
"""

import numpy as np
from conftest import publish

from repro.bench.experiments import DEFAULT_N, fig6_tradeoff
from repro.bench.reporting import format_table


def run() -> list[dict]:
    return fig6_tradeoff(n=DEFAULT_N, rounds=40)


def test_fig6(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        rows, title=f"Figure 6 - security vs performance (N={DEFAULT_N}, "
                    "sorted by theoretical alpha)")
    publish("fig6_tradeoff", text)

    alphas = np.array([row["alpha_theory"] for row in rows], float)
    throughputs = np.array([row["throughput_ops"] for row in rows], float)
    # Positive rank correlation: lower alpha (more secure) <-> slower.
    correlation = np.corrcoef(np.argsort(np.argsort(alphas)),
                              np.argsort(np.argsort(throughputs)))[0, 1]
    assert correlation > 0.5
    assert throughputs[0] < throughputs[-1]
