"""Wall-clock fast-path benchmark: batched kernels vs the scalar seed path.

Unlike the figure benchmarks (simulated time), this measures what the
hardware actually does: real rounds/sec and µs/request through the full
proxy, plus per-kernel microbenchmarks (PRF, AEAD, timestamp index,
cache).  The scalar baseline is the pre-optimization implementation kept
in :mod:`repro.sim.perf`; both kernel sets are bit-compatible, which the
trace-equivalence section proves on a fixed-seed workload.

Results are published to ``benchmarks/results/wallclock.txt`` and, as
machine-readable JSON, to ``BENCH_wallclock.json`` at the repo root so
successive PRs accumulate a performance trajectory.
"""

from __future__ import annotations

import json
import pathlib

from conftest import emit_result

from repro.sim.perf import run_wallclock_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_wallclock.json"


def _render(report: dict) -> str:
    kernels = report["kernels"]
    e2e = report["end_to_end"]
    lines = [
        "Wall-clock fast path — batched kernels vs scalar seed path",
        "",
        f"{'kernel':<8} {'scalar ops/s':>14} {'batched ops/s':>14} {'speedup':>8}",
    ]
    for name, row in kernels.items():
        if name == "aead":
            lines.append(
                f"{'aead-enc':<8} {row['scalar_encrypt_ops_per_sec']:>14.0f} "
                f"{row['batched_encrypt_ops_per_sec']:>14.0f} "
                f"{row['encrypt_speedup']:>7.2f}x")
            lines.append(
                f"{'aead-dec':<8} {row['scalar_decrypt_ops_per_sec']:>14.0f} "
                f"{row['batched_decrypt_ops_per_sec']:>14.0f} "
                f"{row['decrypt_speedup']:>7.2f}x")
        else:
            lines.append(
                f"{name:<8} {row['scalar_ops_per_sec']:>14.0f} "
                f"{row['batched_ops_per_sec']:>14.0f} {row['speedup']:>7.2f}x")
    scalar, batched = e2e["scalar"], e2e["batched"]
    lines += [
        "",
        f"end-to-end (N={scalar['n']}, B={scalar['b']}, R={scalar['r']}, "
        f"value={scalar['value_size']}B, {scalar['rounds']} rounds):",
        f"  scalar : {scalar['rounds_per_sec']:>8.1f} rounds/s  "
        f"{scalar['us_per_request']:>8.1f} us/req",
        f"  batched: {batched['rounds_per_sec']:>8.1f} rounds/s  "
        f"{batched['us_per_request']:>8.1f} us/req",
        f"  speedup: {e2e['rounds_per_sec_speedup']:.2f}x",
        "",
        "batched round breakdown (seconds): " + ", ".join(
            f"{k}={v:.3f}" for k, v in batched["breakdown_seconds"].items()),
        "",
        "trace equivalence (fixed seed, scalar vs batched kernels): "
        + ("IDENTICAL" if report["trace_equivalence"]["identical"] else
           "DIVERGED"),
    ]
    return "\n".join(lines)


def run() -> dict:
    return run_wallclock_benchmark()


def test_wallclock_fastpath(benchmark):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_result("wallclock", _render(report), data=report)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # The optimization contract: identical adversary-visible behaviour...
    assert report["trace_equivalence"]["identical"]
    # ...and the wall-clock targets of the batching work.
    kernels = report["kernels"]
    assert kernels["aead"]["encrypt_speedup"] >= 3.0
    assert kernels["aead"]["decrypt_speedup"] >= 3.0
    assert kernels["prf"]["speedup"] > 1.0
    assert kernels["index"]["speedup"] > 1.0
    assert report["end_to_end"]["rounds_per_sec_speedup"] >= 1.5
