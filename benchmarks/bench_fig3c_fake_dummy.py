"""Figure 3c: throughput vs f_D (fake-dummy share of the batch).

Paper: throughput improves as f_D grows from 10% to 60% of B — dummy
objects are never cached, so larger f_D means fewer cache
insertions/evictions per round — while α favours lower f_D.
"""

from conftest import publish

from repro.bench.experiments import DEFAULT_N, fig3c_fake_dummy
from repro.bench.reporting import format_series, format_table


def run() -> list[dict]:
    return fig3c_fake_dummy(n=DEFAULT_N, rounds=60)


def test_fig3c(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join([
        format_table(rows, title=f"Figure 3c - f_D share (N={DEFAULT_N})"),
        format_series(rows, "fake_dummy_pct", "throughput_ops"),
    ])
    publish("fig3c_fake_dummy", text)

    values = [row["throughput_ops"] for row in rows]
    assert values[-1] > values[0]
    assert values == sorted(values)
    alphas = [row["alpha_bound"] for row in rows]
    assert alphas == sorted(alphas)  # the security price of larger f_D
