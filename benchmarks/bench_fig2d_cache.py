"""Figure 2d: Waffle performance vs cache size (1%..32% of N).

Paper: counter-intuitively, performance *degrades* gradually as the
cache grows (the LRU recency tracking costs more); optimum at 1-2%.
"""

from conftest import publish

from repro.bench.experiments import DEFAULT_N, fig2d_cache
from repro.bench.reporting import format_series, format_table


def run() -> list[dict]:
    return fig2d_cache(n=DEFAULT_N, rounds=60)


def test_fig2d(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join([
        format_table(rows, title=f"Figure 2d - cache size (N={DEFAULT_N})"),
        format_series(rows, "cache_pct", "throughput_ops"),
    ])
    publish("fig2d_cache", text)

    values = [row["throughput_ops"] for row in rows]
    assert values == sorted(values, reverse=True)  # monotone mild decline
    assert values[-1] > 0.85 * values[0]  # gradual, not a cliff
    hit_rates = [row["hit_rate"] for row in rows]
    assert hit_rates == sorted(hit_rates)  # bigger cache, more hits
