"""Scale-out ablation (the paper's §10 future work): throughput vs
partition count.

Partitions are independent Waffle instances on disjoint key ranges, so
they run in parallel on separate proxy machines; aggregate throughput
should scale near-linearly while every partition keeps its own α/β
guarantees (verified in tests/test_scaleout.py).
"""

from conftest import publish

from repro.bench.harness import waffle_round_time
from repro.bench.reporting import format_table
from repro.core.batch import request_from_trace  # noqa: F401
from repro.core.config import WaffleConfig
from repro.scaleout import PartitionedWaffle
from repro.sim.costmodel import CostModel
from repro.workloads.ycsb import workload_c

PER_PARTITION = 2048
CONFIG = WaffleConfig.paper_defaults(n=PER_PARTITION, seed=3)


def run_partitions(partitions: int, requests: int = 6000,
                   uniform: bool = True) -> dict:
    candidates = (f"user{i:08d}" for i in range(10_000_000))
    keys = PartitionedWaffle.plan_partitions(candidates, PER_PARTITION,
                                             partitions, master_seed=11)
    items = {key: b"v" * 256 for key in keys}
    store = PartitionedWaffle(CONFIG, items, partitions, master_seed=11)
    cost = CostModel(cores=4)

    # Zipf workload over the union of keys (sample indices, map to the
    # partition-planned key names).
    from repro.core.batch import ClientRequest
    from repro.workloads.trace import Operation

    workload = workload_c(len(keys), seed=7, value_size=256,
                          uniform=uniform)
    key_list = sorted(items)
    trace = [
        ClientRequest(op=Operation.READ,
                      key=key_list[int(req.key[4:]) % len(key_list)])
        for req in workload.trace(requests)
    ]

    # Route in R-sized waves; each partition's simulated time accrues
    # independently (separate proxy machines run in parallel).
    partition_time = [0.0] * partitions
    wave = CONFIG.r * partitions * 10  # amortize partial final rounds
    for start in range(0, len(trace), wave):
        chunk = trace[start: start + wave]
        rounds_before = [s.proxy.totals.rounds for s in store.stores]
        store.execute_batch(chunk)
        for index, datastore in enumerate(store.stores):
            for stats in datastore.proxy.totals.stats_by_round[
                    rounds_before[index]:]:
                partition_time[index] += waffle_round_time(stats, CONFIG,
                                                           cost)
    makespan = max(partition_time)
    return {
        "partitions": partitions,
        "workload": "uniform" if uniform else "zipf-0.99",
        "throughput_ops": len(trace) / makespan if makespan else 0.0,
        "slowest_partition_s": makespan,
    }


def run() -> list[dict]:
    rows = [run_partitions(p, uniform=True) for p in (1, 2, 4)]
    # The skewed contrast: Zipf load imbalance caps the speedup — the
    # scaling cost the paper's future-work section would have to face.
    rows.append(run_partitions(4, uniform=False))
    return rows


def test_scaleout(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base = rows[0]["throughput_ops"]
    for row in rows:
        row["speedup"] = row["throughput_ops"] / base
    text = format_table(
        rows, title=f"Scale-out ablation (N={PER_PARTITION}/partition)")
    publish("scaleout", text)

    by = {(row["partitions"], row["workload"]): row for row in rows}
    assert by[(2, "uniform")]["speedup"] > 1.6
    assert by[(4, "uniform")]["speedup"] > 2.8
    # Skew costs scaling: the Zipf run trails the uniform 4-way run.
    assert by[(4, "zipf-0.99")]["throughput_ops"] < \
        by[(4, "uniform")]["throughput_ops"]
