"""Figure 4: adversary-observable α histograms, high & medium security,
skewed vs uniform inputs.

Paper: for a given security level the two input distributions produce
near-identical histograms (high: avg bucket difference 1,994 of ~2.5M
requests; medium: 25,024, i.e. ~1% of requests differ) — that
similarity is the empirical obliviousness argument.
"""

from conftest import publish

from repro.analysis.histograms import render_histogram
from repro.bench.experiments import DEFAULT_N, fig4_alpha_histograms


def run() -> dict:
    return fig4_alpha_histograms(n=DEFAULT_N, rounds=300)


def test_fig4(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Figure 4 - alpha histograms (N={DEFAULT_N})"]
    for level in ("high", "medium"):
        comparison = out["comparisons"][level]
        lines.append(f"\n[{level} security] differing fraction = "
                     f"{comparison.differing_fraction:.4f} "
                     "(paper: ~0.001 high / ~0.01 medium); "
                     f"mean bucket diff = "
                     f"{comparison.mean_bucket_difference:.1f}")
        for dist in ("skewed", "uniform"):
            lines.append(f"-- {level}/{dist}:")
            lines.append(render_histogram(out["histograms"][level][dist],
                                          max_rows=10))
    publish("fig4_alpha_histograms", "\n".join(lines))

    # Obliviousness: histograms close across input distributions.
    assert out["comparisons"]["high"].differing_fraction < 0.25
    assert out["comparisons"]["medium"].differing_fraction < 0.25
    # High security concentrates alpha near zero; medium spreads wide.
    high_max = max(out["histograms"]["high"]["skewed"])
    medium_max = max(out["histograms"]["medium"]["skewed"])
    assert high_max < medium_max
