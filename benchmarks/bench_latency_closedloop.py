"""Latency percentiles under closed-loop load (beyond the paper's means).

The paper reports average latency only.  This bench derives Waffle's
round time from a real protocol run (cost model), then drives a
closed-loop client population through the queueing simulator to obtain
p50/p95/p99: under saturation latency grows linearly with the client
population (batches queue), and under light load the round-timeout
dominates — both effects an operator sizing R against their offered
load needs to see.
"""

from conftest import publish

from repro.bench.harness import run_waffle, waffle_round_time
from repro.bench.reporting import format_table
from repro.core.config import WaffleConfig
from repro.sim.closedloop import simulate_closed_loop
from repro.sim.costmodel import CostModel
from repro.workloads.ycsb import workload_c

N = 2**13


def run() -> list[dict]:
    config = WaffleConfig.paper_defaults(n=N, seed=3)
    workload = workload_c(N, seed=5, value_size=1000)
    items = dict(workload.initial_records())
    cost = CostModel(cores=4)
    _, datastore = run_waffle(config, items,
                              workload.trace(config.r * 30), cost)
    round_time = sum(
        waffle_round_time(stats, config, cost)
        for stats in datastore.proxy.totals.stats_by_round
    ) / datastore.proxy.totals.rounds

    rows = []
    for clients in (2, config.r, 4 * config.r, 16 * config.r):
        result = simulate_closed_loop(
            round_time_s=round_time, batch_capacity=config.r,
            clients=clients, duration_s=20.0,
            think_time_s=round_time / 2, exponential_think=True, seed=17,
        )
        rows.append({
            "clients": clients,
            "throughput_ops": result.throughput_ops,
            "p50_ms": result.latency.p50 * 1e3,
            "p95_ms": result.latency.p95 * 1e3,
            "p99_ms": result.latency.p99 * 1e3,
            "timeout_dispatches": result.timeout_dispatches,
        })
    return rows


def test_latency_closedloop(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        rows, title=f"Closed-loop latency percentiles (N={N}, "
                    "round time from the calibrated cost model)")
    publish("latency_closedloop", text)

    by = {row["clients"]: row for row in rows}
    populations = sorted(by)
    # Throughput saturates; tail latency keeps growing with queueing.
    assert by[populations[-1]]["p99_ms"] > by[populations[1]]["p99_ms"]
    assert by[populations[-1]]["throughput_ops"] == \
        max(row["throughput_ops"] for row in rows)
    # Underload (2 clients < R) is served via timeout dispatches.
    assert by[2]["timeout_dispatches"] > 0
    # Percentile sanity.
    for row in rows:
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
