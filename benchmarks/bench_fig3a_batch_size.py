"""Figure 3a: throughput vs batch size B (R=40%, f_D=20% proportional).

Paper: B=10 performs worst; beyond a small knee the curve is flat
(<= 5% variation) — batch size has security implications but not
performance implications.
"""

from conftest import emit_result

from repro.bench.experiments import DEFAULT_N, fig3a_batch_size
from repro.bench.reporting import format_series, format_table


def run() -> list[dict]:
    return fig3a_batch_size(n=DEFAULT_N, rounds=60)


def test_fig3a(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join([
        format_table(rows, title=f"Figure 3a - batch size (N={DEFAULT_N})"),
        format_series(rows, "batch_size", "throughput_ops"),
    ])
    emit_result("fig3a_batch_size", text, data=rows)

    smallest = rows[0]["throughput_ops"]
    plateau = [row["throughput_ops"] for row in rows[2:]]
    assert all(value > smallest for value in plateau)
    # Flat plateau: max 25% spread at this scale (paper: 5% at N=2^20,
    # where the fixed RTT amortizes further).
    assert max(plateau) / min(plateau) < 1.25
