"""Figure 3b: throughput vs R (the real-request share of the batch).

Paper: throughput improves 5.8x as R grows from 10% to 80% of B —
more client requests per round, fewer fake queries — while security
(α) favours lower R.
"""

from conftest import publish

from repro.bench.experiments import DEFAULT_N, fig3b_real_fraction
from repro.bench.reporting import format_series, format_table


def run() -> list[dict]:
    return fig3b_real_fraction(n=DEFAULT_N, rounds=60)


def test_fig3b(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    improvement = rows[-1]["throughput_ops"] / rows[0]["throughput_ops"]
    text = "\n".join([
        format_table(rows, title=f"Figure 3b - R share (N={DEFAULT_N})"),
        format_series(rows, "real_pct", "throughput_ops"),
        f"10% -> ~80%: {improvement:.2f}x (paper 5.8x)",
    ])
    publish("fig3b_real_fraction", text)

    values = [row["throughput_ops"] for row in rows]
    assert values == sorted(values)
    assert improvement > 4.0
    # The security cost: alpha (theoretical) grows with R.
    alphas = [row["alpha_bound"] for row in rows]
    assert alphas == sorted(alphas)
