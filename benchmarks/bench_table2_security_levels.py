"""Table 2: three security levels × two input distributions.

Paper (N=10^6): high → theoretical α=165/β=161, observed max α=3 /
min β=162, ~30 ops/s; medium → α=1000/β=5, observed 692-713 / 9,
~11k ops/s; low → α=999999 (not oblivious), ~22k ops/s.  The
theoretical columns at the paper's N are reproduced *exactly*; the
observed columns and throughputs are measured at the scaled N.
"""

from conftest import publish

from repro.bench.experiments import DEFAULT_N, table2_security_levels
from repro.bench.reporting import format_table

COLUMNS = [
    "level", "distribution", "alpha_theory_paper_n", "alpha_theory",
    "alpha_effective", "alpha_observed", "beta_theory_paper_n",
    "beta_theory", "beta_observed", "throughput_ops",
]


def run() -> list[dict]:
    return table2_security_levels(n=DEFAULT_N, rounds=300)


def test_table2(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        rows, columns=COLUMNS,
        title=(f"Table 2 - security levels (scaled N={DEFAULT_N}; "
               "*_paper_n columns evaluated at the paper's N=10^6)"))
    publish("table2_security_levels", text)

    by = {(row["level"], row["distribution"]): row for row in rows}

    # Paper-exact theoretical bounds at N=10^6 (Table 2's own numbers).
    assert by[("high", "skewed")]["alpha_theory_paper_n"] == 165
    assert by[("high", "skewed")]["beta_theory_paper_n"] == 161
    assert by[("medium", "skewed")]["alpha_theory_paper_n"] == 1000
    assert by[("medium", "skewed")]["beta_theory_paper_n"] == 5
    assert by[("low", "skewed")]["alpha_theory_paper_n"] == 999999
    assert by[("low", "skewed")]["beta_theory_paper_n"] == 4

    for row in rows:
        # Theorem 7.3: observations within the implementation bounds.
        if row["alpha_observed"] is not None:
            assert row["alpha_observed"] <= row["alpha_effective"]
        if row["beta_observed"] is not None:
            assert row["beta_observed"] >= row["beta_theory"]

    # Security/performance ordering across the three levels.
    assert by[("high", "skewed")]["throughput_ops"] < \
        by[("medium", "skewed")]["throughput_ops"] < \
        by[("low", "skewed")]["throughput_ops"]

    # High security observes far smaller alpha than its bound (paper: 3
    # vs 165) because only ~1% of objects are server-resident.
    high = by[("high", "skewed")]
    assert high["alpha_observed"] < high["alpha_theory"] / 5
