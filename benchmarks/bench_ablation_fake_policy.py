"""Challenge-2 ablation: least-recently-accessed vs uniform-random
fake-query selection.

Not a paper figure — it isolates the design choice §4 (Challenge 2)
argues for: picking least-recently-accessed objects for fake queries is
what bounds α.  Uniform-random selection leaves a tail of objects
unvisited for arbitrarily long, so the observed max α blows past the
least-recent policy's bound.
"""

from conftest import publish

from repro.bench.experiments import ablation_fake_policy


def run() -> dict:
    return ablation_fake_policy(n=4096, rounds=1200, seed=59)


def test_ablation_fake_policy(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join([
        "Fake-query selection policy ablation (N=4096, 1200 rounds)",
        f"  least_recent: max alpha {out['least_recent']['max_alpha']} "
        f"(bound {out['least_recent']['bound']}), "
        f"unread ids {out['least_recent']['unread_ids']}",
        f"  uniform     : max alpha {out['uniform']['max_alpha']} "
        f"(no bound holds), unread ids {out['uniform']['unread_ids']}",
    ])
    publish("ablation_fake_policy", text)

    assert out["least_recent"]["max_alpha"] <= out["least_recent"]["bound"]
    assert out["uniform"]["max_alpha"] > 1.5 * out["least_recent"]["max_alpha"]
