"""Figure 2c: Waffle throughput/latency vs proxy core count.

Paper: +58.9% throughput and -37.2% latency from 1 to 4 cores; beyond 4
cores multi-threading overwhelms the proxy and throughput drops ~40%.
"""

from conftest import publish

from repro.bench.experiments import DEFAULT_N, fig2c_cores
from repro.bench.reporting import format_series, format_table


def run() -> list[dict]:
    return fig2c_cores(n=DEFAULT_N, rounds=60)


def test_fig2c(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_cores = {row["cores"]: row for row in rows}
    gain = (by_cores[4]["throughput_ops"] / by_cores[1]["throughput_ops"]
            - 1) * 100
    drop = (1 - by_cores[8]["throughput_ops"]
            / by_cores[4]["throughput_ops"]) * 100
    text = "\n".join([
        format_table(rows, title=f"Figure 2c - cores (N={DEFAULT_N})"),
        format_series(rows, "cores", "throughput_ops"),
        f"1->4 cores: +{gain:.1f}% (paper +58.9%); "
        f"4->8 cores: -{drop:.1f}% (paper ~-40%)",
    ])
    publish("fig2c_cores", text)

    assert by_cores[4]["throughput_ops"] > by_cores[1]["throughput_ops"]
    assert by_cores[4]["throughput_ops"] > by_cores[8]["throughput_ops"]
    assert by_cores[4]["latency_ms"] < by_cores[1]["latency_ms"]
    assert 30 < gain < 90
    assert 20 < drop < 60
