"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper table/figure (DESIGN.md §3) at the
scaled N, prints the paper-vs-measured comparison, and persists it under
``benchmarks/results/`` so the numbers survive pytest's stdout capture.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a rendered experiment and save it to benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_result(name: str, text: str, data=None) -> None:
    """Publish one benchmark result in both human and machine form.

    The rendered ``text`` goes through :func:`publish` (stdout +
    ``results/<name>.txt``); ``data`` — plus a metrics snapshot when the
    observability layer is live — lands in ``results/<name>.json``.  The
    benches used to hand-roll this pair of sinks each in their own way.
    """
    publish(name, text)
    from repro.obs import OBS

    payload = {
        "name": name,
        "data": data,
        "metrics": OBS.registry.snapshot() if OBS.enabled else None,
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n")
