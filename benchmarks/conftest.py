"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper table/figure (DESIGN.md §3) at the
scaled N, prints the paper-vs-measured comparison, and persists it under
``benchmarks/results/`` so the numbers survive pytest's stdout capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a rendered experiment and save it to benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
