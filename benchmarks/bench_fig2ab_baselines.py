"""Figure 2a/2b: Waffle vs insecure baseline, Pancake, TaoStore.

Paper (N=2^20, single-core proxies, YCSB A & C, Zipf 0.99):
  insecure 5.8-6.04x Waffle's throughput; Waffle 45.5-57.7% above
  Pancake; Waffle 102x above TaoStore; latency insecure < Waffle (<1ms)
  < Pancake < TaoStore (~300ms).
"""

from conftest import emit_result

from repro.bench.experiments import DEFAULT_N, fig2ab_baselines
from repro.bench.reporting import format_table


def run() -> list[dict]:
    return fig2ab_baselines(n=DEFAULT_N, rounds=120)


def test_fig2ab(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {(row["workload"], row["system"]): row for row in rows}
    lines = [format_table(rows, title="Figure 2a/2b - baselines "
                                      f"(N={DEFAULT_N}, scaled)")]
    for workload in ("YCSB-A", "YCSB-C"):
        waffle = by[(workload, "waffle")]["throughput_ops"]
        lines.append(
            f"{workload}: insecure/waffle = "
            f"{by[(workload, 'insecure')]['throughput_ops'] / waffle:.2f} "
            "(paper 5.8-6.04) | waffle/pancake = "
            f"{waffle / by[(workload, 'pancake')]['throughput_ops']:.2f} "
            "(paper 1.455-1.577) | waffle/taostore = "
            f"{waffle / by[(workload, 'taostore')]['throughput_ops']:.0f} "
            "(paper 102)"
        )
    emit_result("fig2ab_baselines", "\n".join(lines), data=rows)

    for workload in ("YCSB-A", "YCSB-C"):
        waffle = by[(workload, "waffle")]
        assert by[(workload, "insecure")]["throughput_ops"] > \
            waffle["throughput_ops"]
        assert waffle["throughput_ops"] > \
            by[(workload, "pancake")]["throughput_ops"]
        assert waffle["throughput_ops"] > \
            50 * by[(workload, "taostore")]["throughput_ops"]
        assert by[(workload, "taostore")]["latency_ms"] > 100
