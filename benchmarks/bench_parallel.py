"""Multi-core round execution: measured speedup vs the pipeline model.

This is the wall-clock companion to ``bench_fig2c_cores.py``: where that
benchmark sweeps the *simulated* :class:`~repro.sim.pipeline.PipelineModel`
over worker counts, this one runs real rounds through
:class:`repro.parallel.WorkerPool` on the machine's actual cores and
overlays the measured rounds/sec curve on the model's prediction.  Every
pooled run moves its chunks through shared-memory segments; the report
also re-measures one pooled point on the legacy pickle pipe so the
transport win stays visible, and labels a run per crypto backend.

Two families of assertion:

* **Byte identity** (unconditional, any machine): the adversary trace
  and response digests must be identical for every worker count, every
  transport, and every backend × worker combination, and the
  shard-parallel ``PartitionedWaffle`` must match its serial twin per
  partition.  Parallelism must be invisible to the adversary.
* **Speedup** (gated on ``os.cpu_count()``): 2 workers ≥ 1.5× and
  4 workers ≥ 2.5× on a ≥4-core machine; 2 workers ≥ 1.3× when only
  2–3 cores exist.  A gate the hardware cannot express is reported as a
  loud SKIPPED line (and ``pytest.skip`` under pytest) — never a silent
  pass.

Results are published to ``benchmarks/results/parallel.txt`` and, as
machine-readable JSON, to ``BENCH_parallel.json`` at the repo root.
Run standalone (``python benchmarks/bench_parallel.py``), optionally
restricting the backend matrix with ``--backend`` (repeatable), or
through pytest-benchmark like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro.sim.perf import run_parallel_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_parallel.json"

WORKER_COUNTS = (1, 2, 4, 8)


def _render(report: dict) -> str:
    lines = [
        "Multi-core round execution — measured vs modelled (Fig 2c regime)",
        "",
        f"machine cores: {report['cpu_count']}",
        f"round shape: N={report['config']['n']} B={report['config']['b']} "
        f"R={report['config']['r']} value={report['config']['value_size']}B "
        f"({report['config']['rounds']} rounds per measurement)",
        "",
        f"{'workers':>7} {'rounds/s':>10} {'us/req':>10} "
        f"{'measured':>9} {'modelled':>9}",
    ]
    for workers in sorted(report["measured"], key=int):
        row = report["measured"][workers]
        modeled = report["modeled_speedup"][workers]
        lines.append(
            f"{workers:>7} {row['rounds_per_sec']:>10.2f} "
            f"{row['us_per_request']:>10.1f} {row['speedup']:>8.2f}x "
            f"{modeled:>8.2f}x")
    if report["transports"]:
        lines += ["", "transport ablation (same pooled point):"]
        for transport, row in sorted(report["transports"].items()):
            lines.append(
                f"  {transport:>5} @ {row['workers']} workers: "
                f"{row['rounds_per_sec']:>8.2f} rounds/s "
                f"({row['speedup']:.2f}x vs serial)")
    if report["backends"]:
        lines += ["", "crypto backends (byte-identical; wall clock only):"]
        for backend, runs in sorted(report["backends"].items()):
            for workers, row in sorted(runs.items(), key=lambda kv: int(kv[0])):
                lines.append(
                    f"  {backend:>8} @ {workers} worker(s): "
                    f"{row['rounds_per_sec']:>8.2f} rounds/s "
                    f"({row['speedup']:.2f}x vs serial pure)")
    shard = report["shard_equivalence"]
    small = report["small_shape_equivalence"]
    matrix = report["backend_equivalence"]
    lines += [
        "",
        "byte identity (adversary trace + responses):",
        f"  across workers/transports/backends  : "
        + ("IDENTICAL" if report["digests_identical"] else "DIVERGED"),
        f"  across worker counts (small shape)  : "
        + ("IDENTICAL" if small["identical"] else "DIVERGED"),
        f"  backend x worker matrix "
        f"({len(matrix['combos'])} combos)   : "
        + ("IDENTICAL" if matrix["identical"] else "DIVERGED"),
        f"  shard-parallel vs serial partitions : "
        + ("IDENTICAL" if shard["identical"] else "DIVERGED"),
    ]
    return "\n".join(lines)


def _check(report: dict) -> list[str]:
    """The acceptance contract, shared by pytest and standalone runs.

    Identity is asserted unconditionally.  Speedup gates the hardware
    cannot express come back as skip reasons for the caller to surface
    loudly — ``pytest.skip`` under pytest, printed SKIPPED lines
    standalone — so an undersized runner can never silently pass.
    """
    # Security first: parallelism must not perturb a single adversary-
    # visible byte, regardless of how many cores this machine has.
    assert report["digests_identical"], \
        "adversary trace diverged across workers/transports/backends"
    assert report["small_shape_equivalence"]["identical"], \
        "small-shape trace diverged across worker counts"
    assert report["backend_equivalence"]["identical"], \
        "backend x worker matrix diverged from serial pure"
    assert report["shard_equivalence"]["identical"], \
        "shard-parallel PartitionedWaffle diverged from serial"

    # Performance, where the hardware can express it.
    cores = os.cpu_count() or 1
    measured = report["measured"]
    skipped: list[str] = []
    if cores >= 4:
        if 2 in measured:
            assert measured[2]["speedup"] >= 1.5, (
                f"2 workers on {cores} cores: "
                f"{measured[2]['speedup']:.2f}x < 1.5x")
        if 4 in measured:
            assert measured[4]["speedup"] >= 2.5, (
                f"4 workers on {cores} cores: "
                f"{measured[4]['speedup']:.2f}x < 2.5x")
    elif cores >= 2:
        if 2 in measured:
            assert measured[2]["speedup"] >= 1.3, (
                f"2 workers on {cores} cores: "
                f"{measured[2]['speedup']:.2f}x < 1.3x")
        skipped.append(
            f"4-worker >= 2.5x gate needs >= 4 cores, machine has {cores}")
    else:
        skipped.append(
            f"speedup gates (2w >= 1.5x, 4w >= 2.5x) need >= 2 cores, "
            f"machine has {cores}: byte identity verified, speedup not")
    return skipped


def run(backends: list[str] | None = None) -> dict:
    return run_parallel_benchmark(worker_counts=WORKER_COUNTS,
                                  backends=backends)


def test_parallel_rounds(benchmark):
    import pytest
    from conftest import emit_result

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_result("parallel", _render(report), data=report)
    JSON_PATH.write_text(json.dumps(report, indent=2, default=str) + "\n")
    skipped = _check(report)
    if skipped:
        pytest.skip("; ".join(skipped))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend", action="append", dest="backends", metavar="NAME",
        help="crypto backend to include in the matrix (repeatable; "
             "default: every available backend)")
    args = parser.parse_args(argv)
    report = run(backends=args.backends)
    print(_render(report))
    JSON_PATH.write_text(json.dumps(report, indent=2, default=str) + "\n")
    print(f"\nreport -> {JSON_PATH}")
    skipped = _check(report)
    for reason in skipped:
        print(f"SKIPPED: {reason}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
