"""Multi-core round execution: measured speedup vs the pipeline model.

This is the wall-clock companion to ``bench_fig2c_cores.py``: where that
benchmark sweeps the *simulated* :class:`~repro.sim.pipeline.PipelineModel`
over worker counts, this one runs real rounds through
:class:`repro.parallel.WorkerPool` on the machine's actual cores and
overlays the measured rounds/sec curve on the model's prediction.

Two families of assertion:

* **Byte identity** (unconditional, any machine): the adversary trace
  and response digests must be identical for every worker count, and
  the shard-parallel ``PartitionedWaffle`` must match its serial twin
  per partition.  Parallelism must be invisible to the adversary.
* **Speedup** (gated on ``os.cpu_count()``): 2 workers ≥ 1.3× on a
  ≥2-core machine, 4 workers ≥ 2.0× on a ≥4-core machine.  A 1-core
  container can only verify identity, not speedup.

Results are published to ``benchmarks/results/parallel.txt`` and, as
machine-readable JSON, to ``BENCH_parallel.json`` at the repo root.
Run standalone (``python benchmarks/bench_parallel.py``) or through
pytest-benchmark like the other benchmarks.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

from repro.sim.perf import run_parallel_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_parallel.json"

WORKER_COUNTS = (1, 2, 4, 8)


def _render(report: dict) -> str:
    lines = [
        "Multi-core round execution — measured vs modelled (Fig 2c regime)",
        "",
        f"machine cores: {report['cpu_count']}",
        f"round shape: N={report['config']['n']} B={report['config']['b']} "
        f"R={report['config']['r']} value={report['config']['value_size']}B "
        f"({report['config']['rounds']} rounds per measurement)",
        "",
        f"{'workers':>7} {'rounds/s':>10} {'us/req':>10} "
        f"{'measured':>9} {'modelled':>9}",
    ]
    for workers in sorted(report["measured"], key=int):
        row = report["measured"][workers]
        modeled = report["modeled_speedup"][workers]
        lines.append(
            f"{workers:>7} {row['rounds_per_sec']:>10.2f} "
            f"{row['us_per_request']:>10.1f} {row['speedup']:>8.2f}x "
            f"{modeled:>8.2f}x")
    shard = report["shard_equivalence"]
    small = report["small_shape_equivalence"]
    lines += [
        "",
        "byte identity (adversary trace + responses):",
        f"  across worker counts (bench shape) : "
        + ("IDENTICAL" if report["digests_identical"] else "DIVERGED"),
        f"  across worker counts (small shape) : "
        + ("IDENTICAL" if small["identical"] else "DIVERGED"),
        f"  shard-parallel vs serial partitions: "
        + ("IDENTICAL" if shard["identical"] else "DIVERGED"),
    ]
    return "\n".join(lines)


def _check(report: dict) -> None:
    """The acceptance contract, shared by pytest and standalone runs."""
    # Security first: parallelism must not perturb a single adversary-
    # visible byte, regardless of how many cores this machine has.
    assert report["digests_identical"], \
        "adversary trace diverged across worker counts"
    assert report["small_shape_equivalence"]["identical"], \
        "small-shape trace diverged across worker counts"
    assert report["shard_equivalence"]["identical"], \
        "shard-parallel PartitionedWaffle diverged from serial"

    # Performance, where the hardware can express it.
    cores = os.cpu_count() or 1
    measured = report["measured"]
    if cores >= 2 and 2 in measured:
        assert measured[2]["speedup"] >= 1.3, (
            f"2 workers on {cores} cores: "
            f"{measured[2]['speedup']:.2f}x < 1.3x")
    if cores >= 4 and 4 in measured:
        assert measured[4]["speedup"] >= 2.0, (
            f"4 workers on {cores} cores: "
            f"{measured[4]['speedup']:.2f}x < 2.0x")


def run() -> dict:
    return run_parallel_benchmark(worker_counts=WORKER_COUNTS)


def test_parallel_rounds(benchmark):
    from conftest import emit_result

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_result("parallel", _render(report), data=report)
    JSON_PATH.write_text(json.dumps(report, indent=2, default=str) + "\n")
    _check(report)


def main() -> int:
    report = run()
    print(_render(report))
    JSON_PATH.write_text(json.dumps(report, indent=2, default=str) + "\n")
    print(f"\nreport -> {JSON_PATH}")
    _check(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
