"""Timing-leakage observatory: inference attacks on round-release times.

The adversary model everywhere else in this repo looks at *which*
storage ids a round touches; this benchmark looks at *when* rounds are
released.  Under on-fill batching (fire as soon as ``r`` requests
accumulate) the inter-round gaps are ``r / rate`` in expectation, so an
observer who only sees round-release instants recovers the offered load
by inverting gaps and localises a flash-crowd onset with a mean-shift
scan.  A fixed-interval schedule decouples release times from arrivals
and blinds both attacks.

Assertions (oracle-backed, machine independent — pure simulation on
:class:`repro.sim.clock.SimClock`):

* the on-fill schedule leaks: load-correlation and onset recovery
  combine to a leakage score well above noise;
* the fixed schedule scores below the oracle ceiling and strictly below
  on-fill (``check_timing_channel`` returns no violations).

Results are published to ``benchmarks/results/timing_attack.txt`` and,
as machine-readable JSON, to ``BENCH_timing.json`` at the repo root.
Run standalone (``python benchmarks/bench_timing_attack.py``) or
through pytest-benchmark like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis.timing import timing_attack_benchmark
from repro.testing.oracle import check_timing_channel

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_timing.json"


def _render(report: dict) -> str:
    on_fill = report["on_fill"]
    fixed = report["fixed"]
    onset = report["rounds"] // 2
    lines = [
        "Timing-leakage observatory — round-release inference attacks",
        "",
        f"workload: {report['rounds']} rounds, r={report['r']}, "
        f"base rate {report['base_rate']:.0f} req/s with a "
        f"{report['hot_factor']:.0f}x flash crowd at round {onset} "
        f"(seed {report['seed']})",
        "",
        f"{'schedule':>10} {'load corr':>10} {'onset':>8} {'leakage':>9}",
    ]
    for name, side in (("on_fill", on_fill), ("fixed", fixed)):
        detected = side["onset_detected"]
        lines.append(
            f"{name:>10} {side['load_attack']['correlation']:>10.3f} "
            f"{str(detected if detected is not None else '-'):>8} "
            f"{side['leakage_score']:>9.3f}")
    lines += [
        "",
        f"leakage drop from shaping: {report['leakage_drop']:.3f}",
        "paper framing: batching hides which ids are hot, but on-fill "
        "release times still encode the offered load; fixed-interval "
        "shaping closes the channel",
    ]
    return "\n".join(lines)


def _check(report: dict) -> None:
    violations = check_timing_channel(report)
    assert not violations, "; ".join(v.detail for v in violations)
    assert report["shaped_leaks_less"] is True
    assert report["on_fill"]["leakage_score"] > 0.5, (
        "on-fill schedule should leak visibly: "
        f"{report['on_fill']['leakage_score']:.3f}")


def run(rounds: int = 64, seed: int = 7) -> dict:
    return timing_attack_benchmark(rounds=rounds, seed=seed)


def test_timing_attack(benchmark):
    from conftest import emit_result

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_result("timing_attack", _render(report), data=report)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    _check(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=64)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    report = run(rounds=args.rounds, seed=args.seed)
    print(_render(report))
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nreport -> {JSON_PATH}")
    _check(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
