"""HA ablation: the cost of proxy replication.

Measures what the §3.1 availability assumption costs: snapshot size as
a function of cache size (the checkpoint carries the cache and the
timestamp indexes, not the outsourced data), and the per-batch
replication time at different checkpoint intervals, charged as wire
transfer at the cost model's line rate.
"""

from conftest import publish

from repro.bench.harness import run_waffle, waffle_round_time
from repro.bench.reporting import format_table
from repro.core.config import WaffleConfig
from repro.core.datastore import pad_value
from repro.core.proxy import WaffleProxy
from repro.crypto.keys import KeyChain
from repro.ha import HighlyAvailableProxy, capture_proxy
from repro.sim.costmodel import CostModel
from repro.storage.redis_sim import RedisSim
from repro.workloads.ycsb import workload_a

N = 2**12


def snapshot_size(cache_fraction: float) -> dict:
    config = WaffleConfig.paper_defaults(n=N, seed=3)
    from dataclasses import replace
    config = replace(config, c=max(1, round(cache_fraction * N)))
    proxy = WaffleProxy(config, store=RedisSim(write_once=True),
                        keychain=KeyChain.from_seed(4))
    workload = workload_a(N, seed=5, value_size=1000)
    proxy.initialize({k: pad_value(v, config.value_size)
                      for k, v in workload.initial_records()})
    blob = capture_proxy(proxy)
    cost = CostModel()
    return {
        "cache_pct": round(100 * cache_fraction),
        "snapshot_kib": len(blob) / 1024,
        "ship_time_ms": len(blob) / 1024 * cost.transfer_per_kib_s * 1e3
        + cost.rtt_s * 1e3,
    }


def replication_overhead(interval: int) -> dict:
    config = WaffleConfig.paper_defaults(n=N, seed=3)
    workload = workload_a(N, seed=5, value_size=1000)
    items = dict(workload.initial_records())
    cost = CostModel(cores=4)
    trace = workload.trace(config.r * 60)
    measurement, datastore = run_waffle(config, items, trace, cost)
    # Average round time without replication:
    base_round = measurement.sim_seconds / measurement.rounds
    blob = capture_proxy(datastore.proxy)
    ship = (len(blob) / 1024 * cost.transfer_per_kib_s + cost.rtt_s)
    effective_round = base_round + ship / interval
    return {
        "checkpoint_interval": interval,
        "throughput_ops": config.r / effective_round,
        "overhead_pct": 100 * (effective_round / base_round - 1),
    }


def run() -> dict:
    return {
        "sizes": [snapshot_size(f) for f in (0.01, 0.02, 0.08, 0.32)],
        "intervals": [replication_overhead(i) for i in (1, 4, 16)],
    }


def test_ha_overhead(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join([
        format_table(out["sizes"],
                     title=f"HA snapshot size vs cache (N={N})"),
        format_table(out["intervals"],
                     title="Replication overhead vs checkpoint interval"),
    ])
    publish("ha_overhead", text)

    sizes = [row["snapshot_kib"] for row in out["sizes"]]
    assert sizes == sorted(sizes)  # snapshot grows with the cache
    overheads = [row["overhead_pct"] for row in out["intervals"]]
    assert overheads == sorted(overheads, reverse=True)
    # Full-snapshot synchronous shipping is visibly expensive at this
    # small round time (at the paper's 90 ms rounds it is ~20%); the
    # interval knob amortizes it away — the trade fail_over(allow_stale)
    # guards.
    assert overheads[0] < 150
    assert overheads[-1] < 15
