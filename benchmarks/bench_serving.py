"""Open-loop serving benchmark: throughput, tail latency, live leakage.

Drives the asyncio serving frontend (:mod:`repro.serve`) with seeded
open-loop arrival streams — requests fire on their own schedule whether
or not the server keeps up — and sweeps offered load across every
release policy × workload cell:

* **policies**: on-fill, max-wait, fixed-interval;
* **workloads**: Poisson (memoryless) and flash-crowd (hot-key burst);
* per cell: completed/shed counts, achieved throughput, and p50/p99
  client latency with bootstrap confidence intervals
  (:func:`repro.analysis.stats.bootstrap_ci`) — a p99 from a few
  hundred samples is itself noisy, so every quantile ships with an
  interval.

A final live-server section replays the PR-7 timing attacks against the
frontend's *committed* release schedule on the real clock and asserts
the serving stack's headline security property: fixed-interval release
scores **exactly 0.0** leakage (its committed schedule is a constant
grid) while on-fill visibly leaks the offered-load curve.

The shard-scaling section measures the sharded multi-proxy frontend
(:mod:`repro.serve.sharded`): served throughput and p50/p99 vs
partition count under a saturating open-loop stream, plus the two
security invariants the scale-out must keep — per-partition adversary
traces byte-identical to a serial replay on an identically-seeded twin,
and the *merged* epoch-aligned fixed-interval schedule scoring exactly
0.0 on the load-inference attack.  The 2-partition speedup gate
(>= 1.5x single-proxy) is cpu-gated: on hosts below
``SHARD_GATE_MIN_CORES`` cores it reports a loud SKIPPED instead of a
meaningless pass/fail; the identity and leakage checks always run.

Results go to ``benchmarks/results/serving.{txt,json}`` and, as
machine-readable JSON, ``BENCH_serving.json`` at the repo root.  Run
standalone (``python benchmarks/bench_serving.py [--quick]``) or through
pytest-benchmark like the other benchmarks.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import sys
import time

from repro.analysis.stats import bootstrap_ci, percentile
from repro.analysis.timing import load_inference_attack
from repro.core.batch import ClientResponse
from repro.core.datastore import WaffleDatastore
from repro.errors import OverloadedError
from repro.scaleout.partitioned import PartitionedWaffle
from repro.serve.frontend import AsyncFrontend
from repro.serve.policy import make_policy
from repro.serve.sharded import ShardedFrontend
from repro.sim.perf import _trace_digest
from repro.testing.episodes import chaos_config
from repro.testing.oracle import check_timing_channel
from repro.testing.serving import live_timing_report
from repro.workloads.openloop import FlashCrowdArrivals, PoissonArrivals
from repro.workloads.trace import Operation
from repro.workloads.ycsb import key_name

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serving.json"

POLICIES = ("on_fill", "max_wait", "fixed_interval")
WORKLOADS = ("poisson", "flash_crowd")

#: The 2-partition >= 1.5x speedup gate only means anything with real
#: parallel hardware: P partition rounds + the event loop need cores.
SHARD_GATE_MIN_CORES = 4
SHARD_GATE_SPEEDUP = 1.5


def _build_arrivals(workload: str, rate: float, duration_s: float,
                    n_keys: int, seed: int):
    if workload == "poisson":
        return PoissonArrivals(rate, n_keys, seed=seed)
    return FlashCrowdArrivals(
        rate, n_keys, spike_factor=4.0, burst_start=duration_s * 0.4,
        burst_duration=duration_s * 0.3, hot_keys=max(1, n_keys // 16),
        seed=seed)


def _run_cell(policy_name: str, workload: str, rate: float, *,
              duration_s: float, seed: int, queue_cap: int = 256) -> dict:
    """One curve point: drive a real datastore at one offered load."""
    cfg = chaos_config(seed)
    items = {key_name(i): f"bench-{i}".encode() for i in range(cfg.n)}
    datastore = WaffleDatastore(cfg, items, record=False)
    stream = _build_arrivals(workload, rate, duration_s, cfg.n, seed)
    arrivals = stream.generate(duration_s)
    latencies: list[float] = []
    shed = 0
    errors = 0

    async def drive() -> float:
        nonlocal shed, errors
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: None)  # warm the pool
        frontend = AsyncFrontend(
            datastore,
            policy=make_policy(policy_name, cfg.r, max_wait_s=0.005,
                               interval_s=0.02),
            queue_cap=queue_cap)
        await frontend.start()
        start = time.perf_counter()
        submitted = 0
        all_submitted = asyncio.Event()

        async def one(arrival):
            nonlocal submitted, shed, errors
            await asyncio.sleep(
                max(0.0, arrival.at - (time.perf_counter() - start)))
            submitted += 1
            if submitted == len(arrivals):
                all_submitted.set()
            issued = time.perf_counter()
            try:
                if arrival.op is Operation.WRITE:
                    await frontend.put(arrival.key, b"bench-write")
                else:
                    await frontend.get(arrival.key)
            except OverloadedError:
                shed += 1
            except Exception:  # noqa: BLE001 - tallied, asserted below
                errors += 1
            else:
                latencies.append(time.perf_counter() - issued)

        tasks = [asyncio.ensure_future(one(arrival))
                 for arrival in arrivals]
        await all_submitted.wait()
        await frontend.close()  # drain the sub-R straggler tail
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - start
        cell_stats.update(frontend.stats())
        return elapsed

    cell_stats: dict = {}
    elapsed = asyncio.run(drive())
    completed = len(latencies)

    def quantile_ci(q: float) -> dict:
        point, lo, hi = bootstrap_ci(
            latencies, lambda s: percentile(s, q), seed=seed)
        return {"value_ms": point * 1e3, "lo_ms": lo * 1e3,
                "hi_ms": hi * 1e3}

    return {
        "policy": policy_name,
        "workload": workload,
        "offered_load": rate,
        "offered_requests": len(arrivals),
        "duration_s": duration_s,
        "elapsed_s": elapsed,
        "completed": completed,
        "shed": shed,
        "errors": errors,
        "throughput": completed / elapsed if elapsed > 0 else 0.0,
        "p50": quantile_ci(50.0),
        "p99": quantile_ci(99.0),
        "rounds": cell_stats.get("rounds", 0),
        "empty_rounds": cell_stats.get("empty_rounds", 0),
        "high_water": cell_stats.get("high_water", 0),
    }


def _plan_sharded(cfg, partitions: int, seed: int):
    """A partition-balanced dataset: keys plus their values."""
    candidates = (key_name(i)
                  for i in range(64 * cfg.n * partitions + 4096))
    keys = PartitionedWaffle.plan_partitions(candidates, cfg.n, partitions,
                                             master_seed=seed)
    return keys, {key: b"bench-" + key.encode() for key in keys}


def _run_shard_cell(partitions: int, rate: float, *, duration_s: float,
                    seed: int, queue_cap: int = 1024) -> dict:
    """One shard-scaling point: saturating open-loop load over P shards."""
    cfg = chaos_config(seed)
    keys, items = _plan_sharded(cfg, partitions, seed)
    store = PartitionedWaffle(cfg, items, partitions, master_seed=seed)
    arrivals = PoissonArrivals(rate, len(keys), seed=seed).generate(
        duration_s)
    key_map = {key_name(i): key for i, key in enumerate(keys)}
    latencies: list[float] = []
    shed = 0
    errors = 0
    cell_stats: dict = {}
    per_rows: list[dict] = []

    async def drive() -> float:
        nonlocal shed, errors
        frontend = ShardedFrontend(store, queue_cap=queue_cap)
        await frontend.start()
        start = time.perf_counter()
        submitted = 0
        all_submitted = asyncio.Event()

        async def one(arrival):
            nonlocal submitted, shed, errors
            await asyncio.sleep(
                max(0.0, arrival.at - (time.perf_counter() - start)))
            submitted += 1
            if submitted == len(arrivals):
                all_submitted.set()
            issued = time.perf_counter()
            key = key_map[arrival.key]
            try:
                if arrival.op is Operation.WRITE:
                    await frontend.put(key, b"bench-write")
                else:
                    await frontend.get(key)
            except OverloadedError:
                shed += 1
            except Exception:  # noqa: BLE001 - tallied, asserted below
                errors += 1
            else:
                latencies.append(time.perf_counter() - issued)

        tasks = [asyncio.ensure_future(one(arrival))
                 for arrival in arrivals]
        await all_submitted.wait()
        await frontend.close()  # drain per-partition straggler tails
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - start
        cell_stats.update(frontend.stats())
        per_rows.extend(frontend.per_partition_stats())
        return elapsed

    elapsed = asyncio.run(drive())
    completed = len(latencies)

    def quantile_ci(q: float) -> dict:
        point, lo, hi = bootstrap_ci(
            latencies, lambda s: percentile(s, q), seed=seed)
        return {"value_ms": point * 1e3, "lo_ms": lo * 1e3,
                "hi_ms": hi * 1e3}

    return {
        "partitions": partitions,
        "shard_workers": cell_stats.get("shard_workers", partitions),
        "offered_load": rate,
        "offered_requests": len(arrivals),
        "duration_s": duration_s,
        "elapsed_s": elapsed,
        "completed": completed,
        "shed": shed,
        "errors": errors,
        "throughput": completed / elapsed if elapsed > 0 else 0.0,
        "p50": quantile_ci(50.0),
        "p99": quantile_ci(99.0),
        "rounds": cell_stats.get("rounds", 0),
        "per_partition": [
            {"admitted": row["admitted"], "shed": row["shed"],
             "rounds": row["rounds"], "high_water": row["high_water"]}
            for row in per_rows
        ],
    }


def _shard_identity(seed: int, partitions: int = 2) -> dict:
    """Concurrent sharded fan-in vs serial twin replay, per partition.

    Every key is fetched concurrently through a :class:`ShardedFrontend`
    over a recording :class:`PartitionedWaffle`; the captured round
    partitions replay serially on an identically-seeded twin.  The
    per-partition adversary tapes (storage access records, compared by
    digest) must match byte-for-byte — shard concurrency may reorder
    events only *between* tapes.
    """
    cfg = chaos_config(seed)
    keys, items = _plan_sharded(cfg, partitions, seed)
    live = PartitionedWaffle(cfg, items, partitions, master_seed=seed,
                             record=True, log_ids=True)
    twin = PartitionedWaffle(cfg, items, partitions, master_seed=seed,
                             record=True, log_ids=True)
    captured: list[list[list]] = [[] for _ in range(partitions)]

    def wrap(index, execute):
        def spy(requests):
            captured[index].append(list(requests))
            return execute(requests)
        return spy

    async def drive() -> list[bytes]:
        async with ShardedFrontend(live, wrap_execute=wrap) as frontend:
            return await asyncio.gather(
                *(frontend.get(key) for key in keys))

    values = asyncio.run(drive())
    assert values == [items[key] for key in keys], \
        "sharded fan-in returned wrong bytes"
    for index, rounds in enumerate(captured):
        for batch in rounds:
            twin.stores[index].execute_batch(batch)
    return {
        "partitions": partitions,
        "requests": len(keys),
        "rounds_per_partition": [len(rounds) for rounds in captured],
        "trace_identical": [
            _trace_digest(live.stores[i].recorder.records)
            == _trace_digest(twin.stores[i].recorder.records)
            for i in range(partitions)
        ],
    }


def _shard_grid_schedule(partitions: int, *, seed: int, rate: float,
                         duration_s: float,
                         interval_s: float = 0.025) -> dict:
    """Merged epoch-aligned fixed grids, scored by the timing adversary.

    Every partition's fixed-interval policy is aligned to one shared
    epoch at start, so P grids commit float-identical ticks; the merged
    (deduplicated) schedule is the single-proxy grid and must score
    exactly 0.0 against the load-inference attack even under a flash
    crowd.  Rounds execute against a stand-in (the adversary scores
    *when* rounds fire, not what they carry).
    """
    cfg = chaos_config(seed)
    keys, items = _plan_sharded(cfg, partitions, seed)
    store = PartitionedWaffle(cfg, items, partitions, master_seed=seed)
    workload = FlashCrowdArrivals(
        rate, 64, spike_factor=5.0, burst_start=duration_s * 0.4,
        burst_duration=duration_s * 0.3, hot_keys=4, seed=seed,
        read_fraction=1.0)
    arrivals = workload.generate(duration_s)
    key_map = {key_name(i): keys[i] for i in range(64)}

    def standin(index, execute):
        def run_round(requests):
            return [ClientResponse(request_id=req.request_id, key=req.key,
                                   value=b"") for req in requests]
        return run_round

    merged: list[float] = []
    per_rounds: list[int] = []
    anchor = 0.0

    async def drive() -> None:
        nonlocal anchor
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: None)  # warm the pool
        frontend = ShardedFrontend(
            store,
            policy_factory=lambda index: make_policy(
                "fixed_interval", cfg.r, interval_s=interval_s),
            wrap_execute=standin)
        anchor = time.perf_counter()
        await frontend.start()
        submitted = 0
        all_submitted = asyncio.Event()

        async def one(arrival):
            nonlocal submitted
            await asyncio.sleep(
                max(0.0, arrival.at - (time.perf_counter() - anchor)))
            submitted += 1
            if submitted == len(arrivals):
                all_submitted.set()
            return await frontend.get(key_map[arrival.key])

        tasks = [asyncio.ensure_future(one(arrival))
                 for arrival in arrivals]
        await all_submitted.wait()
        await asyncio.sleep(duration_s * 0.2)  # the quiet regime too
        await frontend.close()
        await asyncio.gather(*tasks)
        merged.extend(frontend.merged_release_times())
        per_rounds.extend(len(f.release_times)
                          for f in frontend.frontends)

    asyncio.run(drive())
    gaps = list(zip(merged, merged[1:]))
    true_rates = [workload.rate_at((a + b) / 2.0 - anchor)
                  for a, b in gaps]
    attack = load_inference_attack(merged, true_rates, cfg.r)
    return {
        "partitions": partitions,
        "interval_s": interval_s,
        "merged_rounds": len(merged),
        "per_partition_rounds": per_rounds,
        "leakage_score": attack["leakage_score"],
    }


def run(quick: bool = False, seed: int = 7) -> dict:
    loads = (300.0, 900.0) if quick else (200.0, 500.0, 1000.0, 2000.0)
    duration_s = 0.3 if quick else 0.8
    curves = [
        _run_cell(policy, workload, rate, duration_s=duration_s, seed=seed)
        for policy in POLICIES
        for workload in WORKLOADS
        for rate in loads
    ]
    timing = live_timing_report(
        seed=seed,
        rate=400.0 if quick else 600.0,
        duration_s=0.3 if quick else 0.6)
    shard_counts = (1, 2) if quick else (1, 2, 4)
    shard_rate = 1500.0 if quick else 2500.0
    sharding = {
        "cpu_count": os.cpu_count() or 1,
        "counts": list(shard_counts),
        "cells": [
            _run_shard_cell(partitions, shard_rate,
                            duration_s=duration_s, seed=seed)
            for partitions in shard_counts
        ],
        "identity": _shard_identity(seed),
        "grid": _shard_grid_schedule(
            2, seed=seed, rate=400.0 if quick else 600.0,
            duration_s=0.3 if quick else 0.6),
    }
    return {
        "seed": seed,
        "quick": quick,
        "offered_loads": list(loads),
        "curves": curves,
        "timing": timing,
        "sharding": sharding,
    }


def _render(report: dict) -> str:
    lines = [
        "Open-loop serving: throughput and tail latency vs offered load",
        "",
        f"seed {report['seed']}"
        + (" (quick mode)" if report["quick"] else ""),
        "",
        f"{'policy':>15} {'workload':>12} {'offered':>8} {'done':>6} "
        f"{'shed':>5} {'thru':>7} {'p50 ms (95% CI)':>20} "
        f"{'p99 ms (95% CI)':>20}",
    ]
    for cell in report["curves"]:
        p50, p99 = cell["p50"], cell["p99"]
        lines.append(
            f"{cell['policy']:>15} {cell['workload']:>12} "
            f"{cell['offered_load']:>8.0f} {cell['completed']:>6} "
            f"{cell['shed']:>5} {cell['throughput']:>7.0f} "
            f"{p50['value_ms']:>7.2f} [{p50['lo_ms']:.2f},"
            f"{p50['hi_ms']:.2f}] "
            f"{p99['value_ms']:>7.2f} [{p99['lo_ms']:.2f},"
            f"{p99['hi_ms']:.2f}]")
    timing = report["timing"]
    lines += [
        "",
        "live release-schedule leakage (load-inference attack):",
        f"  on-fill        : {timing['on_fill']['leakage_score']:.3f} "
        f"({timing['on_fill']['rounds']} rounds)",
        f"  fixed-interval : {timing['fixed']['leakage_score']:.3f} "
        f"({timing['fixed']['rounds']} rounds)",
    ]
    sharding = report["sharding"]
    base = sharding["cells"][0]["throughput"]
    lines += [
        "",
        f"shard scaling ({sharding['cpu_count']} cores, offered "
        f"{sharding['cells'][0]['offered_load']:.0f}/s):",
        f"{'parts':>7} {'done':>6} {'shed':>5} {'thru':>7} "
        f"{'speedup':>8} {'p50 ms':>8} {'p99 ms':>8}",
    ]
    for cell in sharding["cells"]:
        speedup = cell["throughput"] / base if base > 0 else 0.0
        lines.append(
            f"{cell['partitions']:>7} {cell['completed']:>6} "
            f"{cell['shed']:>5} {cell['throughput']:>7.0f} "
            f"{speedup:>7.2f}x {cell['p50']['value_ms']:>8.2f} "
            f"{cell['p99']['value_ms']:>8.2f}")
    identity = sharding["identity"]
    grid = sharding["grid"]
    lines += [
        f"  per-partition trace identity : "
        f"{identity['trace_identical']} "
        f"({identity['requests']} concurrent requests, "
        f"{identity['rounds_per_partition']} rounds)",
        f"  merged aligned-grid schedule : "
        f"{grid['leakage_score']:.3f} leakage "
        f"({grid['merged_rounds']} merged rounds from "
        f"{grid['per_partition_rounds']})",
        "",
        "paper framing: batching hides which ids are hot; the serving "
        "layer must also not let release *times* betray the offered "
        "load — fixed-interval shaping closes the channel on the live "
        "server (even merged across epoch-aligned shards), at the cost "
        "of empty (all-fake) rounds under light load.",
    ]
    return "\n".join(lines)


def _check(report: dict) -> list[str]:
    """Assert every unconditional invariant; return cpu-gate skips."""
    for cell in report["curves"]:
        where = (f"{cell['policy']}/{cell['workload']}"
                 f"@{cell['offered_load']:.0f}")
        assert cell["errors"] == 0, f"{where}: unexpected client errors"
        assert cell["completed"] > 0, f"{where}: no request completed"
        assert cell["completed"] + cell["shed"] == \
            cell["offered_requests"], f"{where}: requests unaccounted"
        for q in ("p50", "p99"):
            ci = cell[q]
            assert ci["lo_ms"] <= ci["value_ms"] <= ci["hi_ms"], (
                f"{where}: {q} outside its own CI")
    timing = report["timing"]
    violations = check_timing_channel(timing)
    assert not violations, "; ".join(v.detail for v in violations)
    assert timing["fixed"]["leakage_score"] == 0.0, (
        "fixed-interval must score exactly 0.0 on the live server: "
        f"{timing['fixed']['leakage_score']}")

    sharding = report["sharding"]
    for cell in sharding["cells"]:
        where = f"shards={cell['partitions']}"
        assert cell["errors"] == 0, f"{where}: unexpected client errors"
        assert cell["completed"] > 0, f"{where}: no request completed"
        assert cell["completed"] + cell["shed"] == \
            cell["offered_requests"], f"{where}: requests unaccounted"
    identity = sharding["identity"]
    assert all(identity["trace_identical"]), (
        "per-partition adversary traces diverged from serial replay: "
        f"{identity['trace_identical']}")
    grid = sharding["grid"]
    assert grid["leakage_score"] == 0.0, (
        "merged epoch-aligned grid must score exactly 0.0: "
        f"{grid['leakage_score']}")
    assert grid["merged_rounds"] < sum(grid["per_partition_rounds"]), (
        "aligned grids should deduplicate in the merged schedule: "
        f"{grid['merged_rounds']} merged from "
        f"{grid['per_partition_rounds']}")

    skips: list[str] = []
    cores = sharding["cpu_count"]
    if cores < SHARD_GATE_MIN_CORES:
        skips.append(
            f"shard speedup gate needs >= {SHARD_GATE_MIN_CORES} cores "
            f"(host has {cores}); identity and leakage checks still ran")
        return skips
    by_partitions = {cell["partitions"]: cell
                     for cell in sharding["cells"]}
    base = by_partitions[1]["throughput"]
    two = by_partitions[2]["throughput"]
    assert two >= SHARD_GATE_SPEEDUP * base, (
        f"2 partitions served {two:.0f}/s, need >= "
        f"{SHARD_GATE_SPEEDUP}x single-proxy {base:.0f}/s")
    return skips


def test_serving(benchmark):
    import pytest

    from conftest import emit_result

    report = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit_result("serving", _render(report), data=report)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    skips = _check(report)
    if skips:
        pytest.skip("; ".join(skips))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short CI-budget sweep")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    report = run(quick=args.quick, seed=args.seed)
    print(_render(report))
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nreport -> {JSON_PATH}")
    for skip in _check(report):
        print(f"SKIPPED: {skip}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
