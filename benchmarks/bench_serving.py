"""Open-loop serving benchmark: throughput, tail latency, live leakage.

Drives the asyncio serving frontend (:mod:`repro.serve`) with seeded
open-loop arrival streams — requests fire on their own schedule whether
or not the server keeps up — and sweeps offered load across every
release policy × workload cell:

* **policies**: on-fill, max-wait, fixed-interval;
* **workloads**: Poisson (memoryless) and flash-crowd (hot-key burst);
* per cell: completed/shed counts, achieved throughput, and p50/p99
  client latency with bootstrap confidence intervals
  (:func:`repro.analysis.stats.bootstrap_ci`) — a p99 from a few
  hundred samples is itself noisy, so every quantile ships with an
  interval.

A final live-server section replays the PR-7 timing attacks against the
frontend's *committed* release schedule on the real clock and asserts
the serving stack's headline security property: fixed-interval release
scores **exactly 0.0** leakage (its committed schedule is a constant
grid) while on-fill visibly leaks the offered-load curve.

Results go to ``benchmarks/results/serving.{txt,json}`` and, as
machine-readable JSON, ``BENCH_serving.json`` at the repo root.  Run
standalone (``python benchmarks/bench_serving.py [--quick]``) or through
pytest-benchmark like the other benchmarks.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import time

from repro.analysis.stats import bootstrap_ci, percentile
from repro.core.datastore import WaffleDatastore
from repro.errors import OverloadedError
from repro.serve.frontend import AsyncFrontend
from repro.serve.policy import make_policy
from repro.testing.episodes import chaos_config
from repro.testing.oracle import check_timing_channel
from repro.testing.serving import live_timing_report
from repro.workloads.openloop import FlashCrowdArrivals, PoissonArrivals
from repro.workloads.trace import Operation
from repro.workloads.ycsb import key_name

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serving.json"

POLICIES = ("on_fill", "max_wait", "fixed_interval")
WORKLOADS = ("poisson", "flash_crowd")


def _build_arrivals(workload: str, rate: float, duration_s: float,
                    n_keys: int, seed: int):
    if workload == "poisson":
        return PoissonArrivals(rate, n_keys, seed=seed)
    return FlashCrowdArrivals(
        rate, n_keys, spike_factor=4.0, burst_start=duration_s * 0.4,
        burst_duration=duration_s * 0.3, hot_keys=max(1, n_keys // 16),
        seed=seed)


def _run_cell(policy_name: str, workload: str, rate: float, *,
              duration_s: float, seed: int, queue_cap: int = 256) -> dict:
    """One curve point: drive a real datastore at one offered load."""
    cfg = chaos_config(seed)
    items = {key_name(i): f"bench-{i}".encode() for i in range(cfg.n)}
    datastore = WaffleDatastore(cfg, items, record=False)
    stream = _build_arrivals(workload, rate, duration_s, cfg.n, seed)
    arrivals = stream.generate(duration_s)
    latencies: list[float] = []
    shed = 0
    errors = 0

    async def drive() -> float:
        nonlocal shed, errors
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: None)  # warm the pool
        frontend = AsyncFrontend(
            datastore,
            policy=make_policy(policy_name, cfg.r, max_wait_s=0.005,
                               interval_s=0.02),
            queue_cap=queue_cap)
        await frontend.start()
        start = time.perf_counter()
        submitted = 0
        all_submitted = asyncio.Event()

        async def one(arrival):
            nonlocal submitted, shed, errors
            await asyncio.sleep(
                max(0.0, arrival.at - (time.perf_counter() - start)))
            submitted += 1
            if submitted == len(arrivals):
                all_submitted.set()
            issued = time.perf_counter()
            try:
                if arrival.op is Operation.WRITE:
                    await frontend.put(arrival.key, b"bench-write")
                else:
                    await frontend.get(arrival.key)
            except OverloadedError:
                shed += 1
            except Exception:  # noqa: BLE001 - tallied, asserted below
                errors += 1
            else:
                latencies.append(time.perf_counter() - issued)

        tasks = [asyncio.ensure_future(one(arrival))
                 for arrival in arrivals]
        await all_submitted.wait()
        await frontend.close()  # drain the sub-R straggler tail
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - start
        cell_stats.update(frontend.stats())
        return elapsed

    cell_stats: dict = {}
    elapsed = asyncio.run(drive())
    completed = len(latencies)

    def quantile_ci(q: float) -> dict:
        point, lo, hi = bootstrap_ci(
            latencies, lambda s: percentile(s, q), seed=seed)
        return {"value_ms": point * 1e3, "lo_ms": lo * 1e3,
                "hi_ms": hi * 1e3}

    return {
        "policy": policy_name,
        "workload": workload,
        "offered_load": rate,
        "offered_requests": len(arrivals),
        "duration_s": duration_s,
        "elapsed_s": elapsed,
        "completed": completed,
        "shed": shed,
        "errors": errors,
        "throughput": completed / elapsed if elapsed > 0 else 0.0,
        "p50": quantile_ci(50.0),
        "p99": quantile_ci(99.0),
        "rounds": cell_stats.get("rounds", 0),
        "empty_rounds": cell_stats.get("empty_rounds", 0),
        "high_water": cell_stats.get("high_water", 0),
    }


def run(quick: bool = False, seed: int = 7) -> dict:
    loads = (300.0, 900.0) if quick else (200.0, 500.0, 1000.0, 2000.0)
    duration_s = 0.3 if quick else 0.8
    curves = [
        _run_cell(policy, workload, rate, duration_s=duration_s, seed=seed)
        for policy in POLICIES
        for workload in WORKLOADS
        for rate in loads
    ]
    timing = live_timing_report(
        seed=seed,
        rate=400.0 if quick else 600.0,
        duration_s=0.3 if quick else 0.6)
    return {
        "seed": seed,
        "quick": quick,
        "offered_loads": list(loads),
        "curves": curves,
        "timing": timing,
    }


def _render(report: dict) -> str:
    lines = [
        "Open-loop serving: throughput and tail latency vs offered load",
        "",
        f"seed {report['seed']}"
        + (" (quick mode)" if report["quick"] else ""),
        "",
        f"{'policy':>15} {'workload':>12} {'offered':>8} {'done':>6} "
        f"{'shed':>5} {'thru':>7} {'p50 ms (95% CI)':>20} "
        f"{'p99 ms (95% CI)':>20}",
    ]
    for cell in report["curves"]:
        p50, p99 = cell["p50"], cell["p99"]
        lines.append(
            f"{cell['policy']:>15} {cell['workload']:>12} "
            f"{cell['offered_load']:>8.0f} {cell['completed']:>6} "
            f"{cell['shed']:>5} {cell['throughput']:>7.0f} "
            f"{p50['value_ms']:>7.2f} [{p50['lo_ms']:.2f},"
            f"{p50['hi_ms']:.2f}] "
            f"{p99['value_ms']:>7.2f} [{p99['lo_ms']:.2f},"
            f"{p99['hi_ms']:.2f}]")
    timing = report["timing"]
    lines += [
        "",
        "live release-schedule leakage (load-inference attack):",
        f"  on-fill        : {timing['on_fill']['leakage_score']:.3f} "
        f"({timing['on_fill']['rounds']} rounds)",
        f"  fixed-interval : {timing['fixed']['leakage_score']:.3f} "
        f"({timing['fixed']['rounds']} rounds)",
        "",
        "paper framing: batching hides which ids are hot; the serving "
        "layer must also not let release *times* betray the offered "
        "load — fixed-interval shaping closes the channel on the live "
        "server, at the cost of empty (all-fake) rounds under light "
        "load.",
    ]
    return "\n".join(lines)


def _check(report: dict) -> None:
    for cell in report["curves"]:
        where = (f"{cell['policy']}/{cell['workload']}"
                 f"@{cell['offered_load']:.0f}")
        assert cell["errors"] == 0, f"{where}: unexpected client errors"
        assert cell["completed"] > 0, f"{where}: no request completed"
        assert cell["completed"] + cell["shed"] == \
            cell["offered_requests"], f"{where}: requests unaccounted"
        for q in ("p50", "p99"):
            ci = cell[q]
            assert ci["lo_ms"] <= ci["value_ms"] <= ci["hi_ms"], (
                f"{where}: {q} outside its own CI")
    timing = report["timing"]
    violations = check_timing_channel(timing)
    assert not violations, "; ".join(v.detail for v in violations)
    assert timing["fixed"]["leakage_score"] == 0.0, (
        "fixed-interval must score exactly 0.0 on the live server: "
        f"{timing['fixed']['leakage_score']}")


def test_serving(benchmark):
    from conftest import emit_result

    report = benchmark.pedantic(run, kwargs={"quick": True},
                                rounds=1, iterations=1)
    emit_result("serving", _render(report), data=report)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    _check(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short CI-budget sweep")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    report = run(quick=args.quick, seed=args.seed)
    print(_render(report))
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nreport -> {JSON_PATH}")
    _check(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
