"""Leakage profile: what an auditing adversary's first-pass statistics
say about each system.

Complements the α/β analysis with the classic toolkit (per-id frequency
entropy, KL divergence from uniform, χ² uniformity test, per-round load
variance) applied to the recorded traces of the insecure baseline,
Pancake and Waffle under the same Zipf-0.99 workload.
"""

import numpy as np
from conftest import publish

from repro.analysis.leakage import leakage_summary
from repro.baselines.insecure import InsecureStore
from repro.baselines.pancake import PancakeProxy
from repro.bench.harness import run_waffle
from repro.bench.reporting import format_table
from repro.core.config import WaffleConfig
from repro.crypto.keys import KeyChain
from repro.sim.costmodel import CostModel
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.ycsb import key_name, workload_c

N = 2048
REQUESTS = 20_000


def run() -> list[dict]:
    workload = workload_c(N, seed=9, value_size=256)
    items = dict(workload.initial_records())
    trace = workload.trace(REQUESTS)
    rows = []

    recorder = RecordingStore(RedisSim())
    insecure = InsecureStore(recorder, dict(items))
    for request in trace:
        insecure.execute(request)
    rows.append(_row("insecure", leakage_summary(recorder.records)))

    recorder = RecordingStore(RedisSim())
    pi = workload_c(N, seed=9, value_size=256) \
        ._sampler.probabilities_by_index()
    pancake = PancakeProxy([key_name(i) for i in range(N)], dict(items),
                           pi, recorder, batch_size=50, seed=9,
                           keychain=KeyChain.from_seed(9))
    for request in trace:
        pancake.submit(request)
    while pancake.pending():
        pancake.process_batch()
    rows.append(_row("pancake", leakage_summary(recorder.records)))

    config = WaffleConfig.paper_defaults(n=N, seed=9)
    _, datastore = run_waffle(config, items, trace, CostModel(),
                              record=True)
    rows.append(_row("waffle",
                     leakage_summary(datastore.recorder.records,
                                     steady_state_from_round=1)))
    return rows


def _row(system: str, summary) -> dict:
    return {
        "system": system,
        "norm_entropy": summary.normalized_entropy,
        "kl_bits": summary.kl_divergence_bits,
        "chi2_p": summary.chi_square_p,
        "read_cv": summary.read_cv,
    }


def test_leakage_profile(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(rows, title=f"Leakage profile (N={N}, Zipf 0.99, "
                                    f"{REQUESTS} requests)")
    publish("leakage_profile", text)

    by = {row["system"]: row for row in rows}
    # Waffle: perfectly flat on every metric.
    assert by["waffle"]["norm_entropy"] == 1.0
    assert by["waffle"]["kl_bits"] < 1e-9
    assert by["waffle"]["chi2_p"] > 0.99
    # Pancake: smoothed frequencies (uniformity not rejected) but its
    # static ids repeat — entropy high, yet the co-occurrence channel of
    # bench_attack_correlated.py remains.
    assert by["pancake"]["chi2_p"] > 0.01
    assert by["pancake"]["norm_entropy"] > 0.98
    # Insecure: the query skew is fully visible.
    assert by["insecure"]["kl_bits"] > 0.3
    assert by["insecure"]["chi2_p"] < 0.01
    assert by["insecure"]["norm_entropy"] < by["waffle"]["norm_entropy"]
