"""§8.3.2 ablation: the correlated (known-query co-occurrence) attack
against Pancake vs Waffle — the design-choice justification for
non-static storage ids (Challenge 4).

Paper claim: IHOP recovers plaintexts from Pancake under correlated
queries; Waffle resists because every storage id is read at most once.
"""

from conftest import publish

from repro.bench.experiments import attack_correlated


def run() -> dict:
    return attack_correlated(n=40, requests=40_000, seed=5)


def test_attack_correlated(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join([
        "Correlated known-query co-occurrence attack (IHOP-style)",
        f"  chance baseline        : {out['chance']:.3f}",
        f"  Pancake (static ids)   : {out['pancake_accuracy']:.3f} "
        f"over {out['pancake_targets']} unknown ids",
        f"  Waffle (rotating ids)  : {out['waffle_accuracy']:.3f} "
        f"over {out['waffle_targets']} unknown ids",
        "paper: attack succeeds against Pancake, fails against Waffle",
    ])
    publish("attack_correlated", text)

    assert out["pancake_accuracy"] > 6 * out["chance"]
    assert out["waffle_accuracy"] < 3 * out["chance"]
