"""YCSB workload D (read-latest + inserts): the mutation path under load.

Not a paper figure — the paper only sketches insert/delete support
(§6.2 end).  This bench measures the cost of that support: Waffle under
workload D (95% reads of recent records, 5% inserts through the
dummy-swap path) against the same datastore running the read-only
workload C, plus the dummy-budget depletion it causes.
"""

from conftest import publish

from repro.bench.harness import run_waffle, run_waffle_with_inserts
from repro.bench.reporting import format_table
from repro.core.config import WaffleConfig
from repro.sim.costmodel import CostModel
from repro.workloads.ycsb import workload_c, workload_d

N = 2**12


def run() -> list[dict]:
    cost = CostModel(cores=4)
    rows = []

    config = WaffleConfig.paper_defaults(n=N, seed=3)
    base = workload_c(N, seed=5, value_size=256)
    items = dict(base.initial_records())
    trace = base.trace(config.r * 150)
    measurement, _ = run_waffle(config, items, trace, cost)
    rows.append({
        "workload": "C (read only)",
        "throughput_ops": measurement.throughput_ops,
        "inserted": 0,
        "dummies_left": config.d,
    })

    latest = workload_d(N, seed=5, value_size=200)
    items_d = dict(latest.initial_records())
    trace_d = latest.trace(config.r * 150)
    measurement_d, datastore = run_waffle_with_inserts(
        config, items_d, trace_d, cost)
    rows.append({
        "workload": "D (read latest + 5% inserts)",
        "throughput_ops": measurement_d.throughput_ops,
        "inserted": measurement_d.extra["inserted"],
        "dummies_left": measurement_d.extra["dummies_left"],
    })
    return rows


def test_workload_d(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(rows, title=f"Workload D vs C (N={N})")
    publish("workload_d", text)

    by = {row["workload"].split(" ")[0]: row for row in rows}
    assert by["D"]["inserted"] > 0
    # Inserts consume dummies one-for-one.
    config = WaffleConfig.paper_defaults(n=N, seed=3)
    assert by["D"]["dummies_left"] == config.d - by["D"]["inserted"]
    # The mutation path costs something but stays the same order.
    assert by["D"]["throughput_ops"] > 0.4 * by["C"]["throughput_ops"]
