"""Figure 3d: throughput vs number of dummy objects D (20%..100% of N).

Paper: D has no significant effect — only the dummy BST depends on it
and dummies are never cached.
"""

from conftest import publish

from repro.bench.experiments import DEFAULT_N, fig3d_num_dummies
from repro.bench.reporting import format_series, format_table


def run() -> list[dict]:
    return fig3d_num_dummies(n=DEFAULT_N, rounds=60)


def test_fig3d(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join([
        format_table(rows, title=f"Figure 3d - dummy count (N={DEFAULT_N})"),
        format_series(rows, "dummies_pct_of_n", "throughput_ops"),
    ])
    publish("fig3d_num_dummies", text)

    values = [row["throughput_ops"] for row in rows]
    assert max(values) / min(values) < 1.05  # flat
