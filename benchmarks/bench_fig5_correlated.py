"""Figure 5: α histograms under correlated vs independent queries.

Paper (N=500, B=100, f_D=20, C=2%, D=200, IHOP clickstream): with
R=20% of B the α values differ for ~0.8% of requests (8.3 kops/s);
with R=40% they differ for ~3% (15.2 kops/s) — lower R buys more
obliviousness for correlated inputs at a throughput cost.
"""

from conftest import publish

from repro.bench.experiments import fig5_correlated
from repro.bench.reporting import format_table


def run() -> list[dict]:
    return fig5_correlated(n=500, requests=50_000)


def test_fig5(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    display = [{key: row[key] for key in
                ("r_pct", "differing_fraction", "mean_bucket_difference",
                 "throughput_ops")} for row in rows]
    text = "\n".join([
        format_table(display,
                     title="Figure 5 - correlated queries (N=500, B=100, "
                           "f_D=20, C=2%, D=200)"),
        "paper: R=20% -> ~0.8% differ, R=40% -> ~3% differ",
    ])
    publish("fig5_correlated", text)

    by_r = {row["r_pct"]: row for row in rows}
    # Histograms stay close under correlation (obliviousness holds).
    assert by_r[20]["differing_fraction"] < 0.15
    assert by_r[40]["differing_fraction"] < 0.25
    # Lower R = more oblivious; higher R = faster (the paper's trade-off).
    assert by_r[20]["differing_fraction"] <= \
        by_r[40]["differing_fraction"] + 0.02
    assert by_r[40]["throughput_ops"] > by_r[20]["throughput_ops"]
