"""Stdlib-only line-coverage measurement for the repro package.

CI measures coverage with ``pytest --cov`` (coverage.py); this tool
exists for environments where coverage.py is not installed — it answers
the one question the CI gate asks ("what fraction of executable lines in
``src/repro`` does the suite execute?") using nothing but
``sys.settrace``.

Usage::

    python tools/coverage_lite.py [pytest args...]
    # e.g. python tools/coverage_lite.py -q tests/test_storage.py

Numbers track coverage.py closely but not exactly (coverage.py excludes
``pragma: no cover`` arcs and handles some compiler-folded lines
differently), so treat the output as a floor estimate: the CI
``--cov-fail-under`` threshold should sit a few points below it.
"""

from __future__ import annotations

import os
import sys
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")

_hits: dict[str, set[int]] = {}


def _trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC):
        return None
    lines = _hits.setdefault(filename, set())

    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local

    if event == "line":  # module-level frames start mid-stream
        lines.add(frame.f_lineno)
    return local


def _executable_lines(path: str) -> set[int]:
    """All line numbers the compiler emits code for in ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        code = compile(handle.read(), path, "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines() if line)
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    return lines


def main(argv: list[str]) -> int:
    sys.path.insert(0, os.path.join(REPO, "src"))
    import pytest

    threading.settrace(_trace)
    sys.settrace(_trace)
    try:
        exit_code = pytest.main(argv or ["-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_exec = total_hit = 0
    rows = []
    for root, _, files in os.walk(SRC):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            executable = _executable_lines(path)
            hit = _hits.get(path, set()) & executable
            total_exec += len(executable)
            total_hit += len(hit)
            pct = 100.0 * len(hit) / len(executable) if executable else 100.0
            rows.append((os.path.relpath(path, REPO), len(executable),
                         len(executable) - len(hit), pct))

    width = max(len(r[0]) for r in rows)
    print(f"\n{'file':{width}}  stmts  miss  cover")
    for path, stmts, miss, pct in rows:
        print(f"{path:{width}}  {stmts:5d}  {miss:4d}  {pct:5.1f}%")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':{width}}  {total_exec:5d}  {total_exec - total_hit:4d}"
          f"  {overall:5.1f}%")
    return exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
